"""Ext-3 benchmark — attack susceptibility, static surfaces and dynamic outcomes.

The figure-scale benchmarks are marked ``slow``; the quick-lane guard at the
bottom runs in the ``-m "not slow"`` lane and pins the adversary plane's
cost: one tiny dynamic campaign must finish under a generous wall-clock
ceiling *and* produce the per-attack verdicts.
"""

from __future__ import annotations

import math
import time

import pytest

from repro.experiments.api import run_experiment
from repro.experiments.attacks import degradation_ratio
from repro.experiments.config import ExperimentConfig

#: Marks only the figure-scale benchmarks below; the quick guard is unmarked.
slow = pytest.mark.slow


@pytest.fixture(scope="module")
def attacks_run(quick_config):
    # All five dynamic attacks, one block each: the sweep's breadth is the
    # point here, the per-campaign depth belongs to paper-scale runs.
    return run_experiment(
        "attacks",
        quick_config,
        {"adversary_fraction": 0.15, "attack_blocks": 1, "attack_txs": 2},
    )


@pytest.fixture(scope="module")
def eclipse_results(attacks_run):
    return attacks_run.payload.eclipse


@pytest.fixture(scope="module")
def partition_results(attacks_run):
    return attacks_run.payload.partition


@slow
def test_bench_attacks(benchmark, quick_config, attacks_run):
    """Time one bcbpt evaluation and report all attack analyses."""

    def bcbpt_only():
        return run_experiment(
            "attacks",
            quick_config.with_overrides(seeds=quick_config.seeds[:1]),
            {
                "adversary_fraction": 0.15,
                "protocols": ("bcbpt",),
                "attacks": ("byzantine",),
                "attack_blocks": 1,
                "attack_txs": 2,
            },
        )

    benchmark.pedantic(bcbpt_only, rounds=1, iterations=1)
    print()
    print(attacks_run.render())


@slow
def test_eclipse_proximity_clustering_raises_exposure(eclipse_results):
    """The paper's concern: an adversary that concentrates peers near the
    victim captures a larger share of its connections under proximity
    clustering than under random selection."""
    by_name = {r.protocol: r for r in eclipse_results}
    assert by_name["bcbpt"].eclipsed_fraction >= by_name["bitcoin"].eclipsed_fraction


@slow
def test_eclipse_fractions_in_range(eclipse_results):
    for result in eclipse_results:
        assert 0.0 <= result.eclipsed_fraction <= 1.0
        assert result.victim_connection_count > 0


@slow
def test_partition_clustered_topologies_have_thinner_boundaries(partition_results):
    """Isolating a cluster requires severing a smaller fraction of all links
    than isolating a comparable region of the random topology."""
    by_name = {r.protocol: r for r in partition_results}
    assert by_name["bcbpt"].boundary_fraction <= by_name["bitcoin"].boundary_fraction


@slow
def test_partition_reports_are_complete(partition_results):
    for result in partition_results:
        assert result.total_links > 0
        assert result.target_group_size > 0
        assert 0.0 < result.largest_component_fraction <= 1.0


@slow
def test_dynamic_outcomes_cover_the_default_sweep(attacks_run):
    """The default run measures every attack kind against every protocol."""
    dynamic = attacks_run.payload.dynamic
    attacks = {result.attack for result in dynamic.values()}
    protocols = {result.protocol for result in dynamic.values()}
    assert {"none", "byzantine", "representatives", "delay", "eclipse", "selfish"} <= attacks
    assert {"bitcoin", "lbc", "bcbpt"} <= protocols
    for protocol in ("bitcoin", "bcbpt"):
        assert not math.isnan(degradation_ratio(dynamic, "byzantine", protocol)), (
            f"byzantine/{protocol} must produce a measurable degradation ratio"
        )


# --------------------------------------------------------- quick-lane guard
#: Generous ceiling for the tiny campaign below: it completes in a fraction
#: of this on any recent machine, so only a structural slowdown in the
#: adversary plane (per-message filter overhead, runaway release loops)
#: trips it — not a loaded CI box.
QUICK_WALL_CLOCK_BOUND_S = 120.0

QUICK_CONFIG = ExperimentConfig(
    node_count=20, runs=1, seeds=(3,), measuring_nodes=1, run_timeout_s=30.0
)


def test_quick_dynamic_attack_cell_is_cheap_and_produces_verdicts():
    """Quick lane: one byzantine cell per overlay, bounded wall clock.

    Guards two properties at once: the adversary plane stays cheap enough
    for unit-test lanes (the per-send behaviour filter must be near-free),
    and even the smallest dynamic run yields the per-attack verdict set the
    experiment promises.
    """
    start = time.perf_counter()
    result = run_experiment(
        "attacks",
        QUICK_CONFIG,
        {
            "attacks": ("byzantine",),
            "protocols": ("bitcoin", "bcbpt"),
            "attack_blocks": 1,
            "attack_txs": 2,
        },
    )
    elapsed = time.perf_counter() - start
    assert elapsed < QUICK_WALL_CLOCK_BOUND_S, (
        f"tiny dynamic attack campaign took {elapsed:.1f}s "
        f"(bound {QUICK_WALL_CLOCK_BOUND_S}s)"
    )
    for verdict in (
        "clustering_contains_byzantine_degradation",
        "representative_capture_widens_surface",
        "clustering_widens_eclipse_surface",
        "delay_injection_degrades_propagation",
        "selfish_mining_pays_somewhere",
    ):
        assert verdict in result.verdicts
    dynamic = result.payload.dynamic
    assert set(dynamic) == {
        "none/bitcoin",
        "none/bcbpt",
        "byzantine/bitcoin",
        "byzantine/bcbpt",
    }
    # The attacked cells really ran against adversaries.
    assert dynamic["byzantine/bitcoin"].messages_suppressed > 0
    assert dynamic["byzantine/bcbpt"].messages_suppressed > 0
    assert not math.isnan(degradation_ratio(dynamic, "byzantine", "bcbpt"))
