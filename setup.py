"""Package metadata and entry points.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .`` with build isolation) cannot
build an editable wheel; ``pip install -e . --no-build-isolation`` (or the
classic ``python setup.py develop``) is the supported install path, which is
why the metadata lives here rather than in a ``pyproject.toml``.

Installing exposes the ``repro`` console script — the unified experiment CLI
(equivalent to ``python -m repro.experiments``)::

    repro list
    repro run fig3 --nodes 200 --runs 10 --workers 4
    repro compare fig3
    repro report fig3      # markdown report + figures from the stored run

Figure rendering (PNG/SVG via matplotlib) is an optional extra::

    pip install -e .[plots] --no-build-isolation

Without it, ``repro report`` falls back to markdown tables for every figure.
"""

from pathlib import Path

from setuptools import find_packages, setup

_VERSION: dict[str, str] = {}
exec((Path(__file__).parent / "src" / "repro" / "version.py").read_text(), _VERSION)

setup(
    name="repro-bcbpt",
    version=_VERSION["__version__"],
    description=(
        "Discrete-event reproduction of the BCBPT proximity-clustering "
        "protocol (Sallal, Owenson, Adda; ICDCS 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "networkx",
    ],
    extras_require={
        # Optional figure rendering for `repro report`; everything else
        # (including the markdown table fallback) works without it.
        "plots": ["matplotlib"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.experiments.cli:main",
        ],
    },
)
