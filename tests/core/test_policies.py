"""Tests for the three neighbour-selection policies and churn maintenance."""

import pytest

from repro.core.bcbpt import BcbptConfig, BcbptPolicy
from repro.core.lbc import LbcConfig, LbcPolicy
from repro.core.maintenance import ChurnMaintainer
from repro.core.random_topology import RandomNeighbourPolicy, RandomPolicyConfig
from repro.net.churn import SessionParameters, SessionLengthModel
from repro.workloads.network_gen import NetworkParameters, build_network
from repro.workloads.scenarios import build_policy, build_scenario


class TestRandomPolicy:
    def test_build_creates_connected_overlay(self, small_bitcoin_scenario):
        scenario = small_bitcoin_scenario
        topology = scenario.network.network.topology
        assert topology.is_connected()
        assert scenario.build_report.node_count == 40
        assert scenario.build_report.link_count > 0

    def test_every_node_reaches_outbound_quota(self, small_bitcoin_scenario):
        network = small_bitcoin_scenario.network.network
        for node_id in network.node_ids():
            assert network.topology.degree(node_id) >= 8

    def test_no_clusters_formed(self, small_bitcoin_scenario):
        assert small_bitcoin_scenario.build_report.cluster_summary["cluster_count"] == 0

    def test_no_ping_measurement_overhead(self, small_bitcoin_scenario):
        assert small_bitcoin_scenario.build_report.ping_exchanges == 0

    def test_select_peers_excludes_self_and_current(self, small_bitcoin_scenario):
        policy = small_bitcoin_scenario.policy
        network = small_bitcoin_scenario.network.network
        peers = policy.select_peers(0)
        assert 0 not in peers
        assert not (set(peers) & set(network.neighbors(0)))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            RandomPolicyConfig(max_outbound=0)
        with pytest.raises(ValueError):
            RandomPolicyConfig(max_outbound=8, candidate_pool_size=4)


class TestLbcPolicy:
    def test_build_clusters_every_node(self, small_lbc_scenario):
        policy = small_lbc_scenario.policy
        assert policy.clusters.assigned_nodes() == 40
        assert small_lbc_scenario.build_report.cluster_summary["cluster_count"] >= 1

    def test_overlay_connected(self, small_lbc_scenario):
        assert small_lbc_scenario.network.network.topology.is_connected()

    def test_cluster_members_are_geographically_close_to_someone(self, small_lbc_scenario):
        policy = small_lbc_scenario.policy
        threshold = policy.config.geographic_threshold_km
        for cluster in policy.clusters.clusters():
            members = cluster.member_list()
            if len(members) < 2:
                continue
            for member in members:
                distances = [
                    policy.geographic_distance_km(member, other)
                    for other in members
                    if other != member
                ]
                assert min(distances) < threshold * 2

    def test_recommend_peers_returns_cluster_members(self, small_lbc_scenario):
        policy = small_lbc_scenario.policy
        cluster = next(c for c in policy.clusters.clusters() if c.size >= 3)
        members = cluster.member_list()
        recommendations = policy.recommend_peers(members[0], members[1])
        assert set(recommendations) <= set(members)
        assert members[1] not in recommendations

    def test_no_latency_measurements_taken(self, small_lbc_scenario):
        # LBC never pings: that is the defining difference from BCBPT.
        assert small_lbc_scenario.build_report.ping_exchanges == 0

    def test_long_links_created(self, small_lbc_scenario):
        links = list(small_lbc_scenario.network.network.topology.links())
        assert any(link.is_long_link for link in links)

    def test_rejoin_reassigns_cluster(self, small_lbc_scenario):
        policy = small_lbc_scenario.policy
        network = small_lbc_scenario.network.network
        seed_service = small_lbc_scenario.network.seed_service
        network.set_online(5, False)
        seed_service.set_online(5, False)
        policy.on_node_leave(5)
        assert policy.clusters.cluster_of(5) is None
        network.set_online(5, True)
        seed_service.set_online(5, True)
        policy.on_node_join(5)
        assert policy.clusters.cluster_of(5) is not None
        assert network.topology.degree(5) > 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            LbcConfig(geographic_threshold_km=0.0)


class TestBcbptPolicy:
    def test_build_clusters_every_node(self, small_bcbpt_scenario):
        policy = small_bcbpt_scenario.policy
        assert policy.clusters.assigned_nodes() == 40

    def test_overlay_connected(self, small_bcbpt_scenario):
        assert small_bcbpt_scenario.network.network.topology.is_connected()

    def test_ping_measurement_overhead_recorded(self, small_bcbpt_scenario):
        # BCBPT must pay the measurement overhead the paper discusses.
        assert small_bcbpt_scenario.build_report.ping_exchanges > 0
        assert small_bcbpt_scenario.network.network.messages_sent["ping"] > 0

    def test_join_traffic_recorded(self, small_bcbpt_scenario):
        messages = small_bcbpt_scenario.network.network.messages_sent
        assert messages["join"] > 0
        assert messages["cluster_members"] > 0

    def test_cluster_links_respect_latency_threshold(self, small_bcbpt_scenario):
        """Every non-long link created by BCBPT joins a pair whose base RTT is
        close to (or under) the threshold — latency-far pairs are never chosen."""
        policy = small_bcbpt_scenario.policy
        network = small_bcbpt_scenario.network.network
        threshold = policy.config.latency_threshold_s
        for link in network.topology.links():
            if link.is_long_link:
                continue
            base = network.base_rtt(link.node_a, link.node_b)
            # Measurement jitter can admit pairs slightly above the threshold.
            assert base < threshold * 2.0

    def test_select_peers_only_returns_close_peers(self, small_bcbpt_scenario):
        policy = small_bcbpt_scenario.policy
        network = small_bcbpt_scenario.network.network
        for peer in policy.select_peers(0)[:5]:
            assert network.base_rtt(0, peer) < policy.config.latency_threshold_s * 2.0

    def test_smaller_threshold_gives_more_smaller_clusters(self):
        params = NetworkParameters(node_count=60, seed=13)
        tight = build_scenario("bcbpt", params, latency_threshold_s=0.015)
        loose = build_scenario("bcbpt", params, latency_threshold_s=0.150)
        tight_summary = tight.policy.clusters.summary()
        loose_summary = loose.policy.clusters.summary()
        assert tight_summary["cluster_count"] >= loose_summary["cluster_count"]
        assert tight_summary["mean_size"] <= loose_summary["mean_size"]

    def test_rejoin_repairs_connections(self, small_bcbpt_scenario):
        policy = small_bcbpt_scenario.policy
        network = small_bcbpt_scenario.network.network
        seed_service = small_bcbpt_scenario.network.seed_service
        network.set_online(3, False)
        seed_service.set_online(3, False)
        policy.on_node_leave(3)
        assert network.topology.degree(3) == 0
        network.set_online(3, True)
        seed_service.set_online(3, True)
        policy.on_node_join(3)
        assert network.topology.degree(3) > 0
        assert policy.clusters.cluster_of(3) is not None

    def test_discovery_round_tops_up_connections(self, small_bcbpt_scenario):
        policy = small_bcbpt_scenario.policy
        network = small_bcbpt_scenario.network.network
        victim = 0
        for peer in list(network.neighbors(victim)):
            network.disconnect(victim, peer)
        created = policy.run_discovery_round(victim)
        assert created > 0
        assert network.topology.degree(victim) > 0

    def test_message_driven_join_handshake(self):
        """The JOIN / JOIN_ACCEPT / CLUSTER_MEMBERS path wires a node into a cluster."""
        simulated = build_network(NetworkParameters(node_count=12, seed=21))
        policy = build_policy("bcbpt", simulated, latency_threshold_s=0.5)
        network = simulated.network
        for node in simulated.nodes.values():
            node.cluster_listener = policy
        # Give the responder a cluster and a link to the joiner first.
        policy.clusters.create_cluster(1, created_at=0.0)
        network.connect(0, 1)
        from repro.protocol.messages import JoinMessage

        network.send(0, 1, JoinMessage(sender=0, measured_rtt_s=0.01))
        simulated.simulator.run(until=10.0)
        assert policy.clusters.are_same_cluster(0, 1)
        assert network.messages_sent["join_accept"] >= 1
        assert network.messages_sent["cluster_members"] >= 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            BcbptConfig(latency_threshold_s=0.0)
        with pytest.raises(ValueError):
            BcbptConfig(ping_samples=0)


class TestChurnMaintainer:
    def test_churned_network_stays_usable(self):
        scenario = build_scenario("bcbpt", NetworkParameters(node_count=30, seed=17))
        simulated = scenario.network
        session_params = SessionParameters(
            median_session_s=30.0, sigma=0.5, stable_fraction=0.0, mean_downtime_s=10.0
        )
        maintainer = ChurnMaintainer(
            simulated.simulator,
            simulated.network,
            scenario.policy,
            simulated.seed_service,
            SessionLengthModel(simulated.simulator.random.stream("sessions"), session_params),
            discovery_interval_s=5.0,
        )
        maintainer.start()
        simulated.simulator.run(until=200.0)
        maintainer.stop()
        assert maintainer.churn.leave_events > 0
        assert maintainer.churn.join_events > 0
        online = simulated.network.online_node_ids()
        assert online, "some nodes must be online after churn"
        # Online nodes should still have connections (the maintainer repaired them).
        degrees = [simulated.network.topology.degree(n) for n in online]
        assert sum(1 for d in degrees if d > 0) >= len(online) * 0.8
