"""Unit tests for the cluster-maintenance repair paths under churn.

The :class:`~repro.core.maintenance.ChurnMaintainer` repair sweep handles the
damage churn inflicts on a clustered overlay: members orphaned into singleton
clusters, clusters whose representative (founder) departed, and an overlay
fragmented by departures.  These paths were previously untested.
"""

from __future__ import annotations

import pytest

from repro.core.maintenance import ChurnMaintainer
from repro.net.churn import SessionLengthModel, SessionParameters
from repro.workloads.network_gen import NetworkParameters, build_network
from repro.workloads.scenarios import ChurnSchedule, build_scenario


def _make_maintainer(scenario, **kwargs) -> ChurnMaintainer:
    simulated = scenario.network
    session_model = SessionLengthModel(
        simulated.simulator.random.stream("test-sessions"),
        SessionParameters(median_session_s=60.0, stable_fraction=0.0, mean_downtime_s=10.0),
    )
    return ChurnMaintainer(
        simulated.simulator,
        simulated.network,
        scenario.policy,
        simulated.seed_service,
        session_model,
        **kwargs,
    )


@pytest.fixture
def bcbpt_scenario():
    return build_scenario(
        "bcbpt", NetworkParameters(node_count=40, seed=11), latency_threshold_s=0.05
    )


class TestOrphanRehoming:
    def test_orphaned_member_rejoins_a_live_cluster(self, bcbpt_scenario):
        """A node stranded in a singleton while its old (close) cluster lives
        on is re-homed by the repair sweep."""
        policy = bcbpt_scenario.policy
        clusters = policy.clusters
        big = max(clusters.clusters(), key=lambda c: c.size)
        assert big.size >= 3, "seed must produce a cluster to orphan from"
        orphan = max(big.member_list())  # not the founder (founders are lowest ids here)
        # Strand the node in its own singleton cluster; its former cluster
        # (full of latency-close peers) keeps running.
        clusters.create_cluster(orphan, created_at=0.0)
        assert clusters.cluster_of(orphan).size == 1

        maintainer = _make_maintainer(bcbpt_scenario)
        actions = maintainer.repair_clusters()

        after = clusters.cluster_of(orphan)
        assert after is not None
        assert after.size > 1, "orphan should have merged back into a live cluster"
        assert actions["orphans_reassigned"] >= 1
        assert maintainer.orphans_reassigned >= 1

    def test_orphan_with_no_close_cluster_keeps_connections(self, bcbpt_scenario):
        """Re-homing never leaves an online orphan unconnected."""
        policy = bcbpt_scenario.policy
        network = bcbpt_scenario.network.network
        big = max(policy.clusters.clusters(), key=lambda c: c.size)
        orphan = max(big.member_list())
        policy.clusters.create_cluster(orphan, created_at=0.0)
        maintainer = _make_maintainer(bcbpt_scenario)
        maintainer.repair_clusters()
        assert network.topology.degree(orphan) > 0

    def test_offline_singletons_are_left_alone(self, bcbpt_scenario):
        policy = bcbpt_scenario.policy
        network = bcbpt_scenario.network.network
        big = max(policy.clusters.clusters(), key=lambda c: c.size)
        orphan = max(big.member_list())
        policy.clusters.create_cluster(orphan, created_at=0.0)
        network.set_online(orphan, False)
        maintainer = _make_maintainer(bcbpt_scenario)
        actions = maintainer.repair_clusters()
        assert actions["orphans_reassigned"] == 0
        # Still stranded (and offline): nothing touched its membership.
        assert policy.clusters.cluster_of(orphan).size == 1


class TestRepresentativeReplacement:
    def test_departed_founder_is_replaced_by_online_member(self, bcbpt_scenario):
        policy = bcbpt_scenario.policy
        network = bcbpt_scenario.network.network
        cluster = max(policy.clusters.clusters(), key=lambda c: c.size)
        assert cluster.size >= 2
        founder = cluster.founder
        cluster_id = cluster.cluster_id

        maintainer = _make_maintainer(bcbpt_scenario)
        assert maintainer.representative_of(cluster_id) == founder

        # The founder/representative departs.
        maintainer._handle_leave(founder)
        assert not network.is_online(founder)
        actions = maintainer.repair_clusters()

        replacement = maintainer.representative_of(cluster_id)
        assert replacement is not None
        assert replacement != founder
        assert network.is_online(replacement)
        assert replacement in policy.clusters.cluster(cluster_id).members
        assert actions["representatives_replaced"] >= 1
        assert maintainer.representatives_replaced >= 1

    def test_stable_representative_is_kept(self, bcbpt_scenario):
        policy = bcbpt_scenario.policy
        cluster = max(policy.clusters.clusters(), key=lambda c: c.size)
        maintainer = _make_maintainer(bcbpt_scenario)
        maintainer.repair_clusters()
        first = maintainer.representative_of(cluster.cluster_id)
        maintainer.repair_clusters()
        assert maintainer.representative_of(cluster.cluster_id) == first
        assert maintainer.representatives_replaced == 0

    def test_dissolved_cluster_records_are_dropped(self, bcbpt_scenario):
        policy = bcbpt_scenario.policy
        maintainer = _make_maintainer(bcbpt_scenario)
        maintainer.repair_clusters()
        victim = min(policy.clusters.clusters(), key=lambda c: c.size)
        victim_id = victim.cluster_id
        for member in victim.member_list():
            policy.clusters.remove_node(member)
        maintainer.repair_clusters()
        assert victim_id not in maintainer.cluster_representatives

    def test_representative_of_unknown_cluster_is_none(self, bcbpt_scenario):
        maintainer = _make_maintainer(bcbpt_scenario)
        assert maintainer.representative_of(10_000) is None


class TestOverlayRepair:
    def test_isolated_node_is_rebridged(self, bcbpt_scenario):
        network = bcbpt_scenario.network.network
        node_id = network.node_ids()[-1]
        for peer in list(network.topology.neighbors(node_id)):
            network.disconnect(node_id, peer)
        assert network.topology.degree(node_id) == 0

        maintainer = _make_maintainer(bcbpt_scenario)
        actions = maintainer.repair_clusters()

        assert actions["bridges_created"] >= 1
        assert maintainer.bridges_created >= 1
        assert network.topology.degree(node_id) > 0
        assert network.topology.is_connected()

    def test_discovery_sweep_tops_up_underconnected_nodes(self, bcbpt_scenario):
        network = bcbpt_scenario.network.network
        policy = bcbpt_scenario.policy
        node_id = network.node_ids()[0]
        # Drop the node to a single link, well under the outbound quota.
        for peer in list(network.topology.neighbors(node_id))[1:]:
            network.disconnect(node_id, peer)
        before = network.topology.degree(node_id)
        assert before < policy.max_outbound

        maintainer = _make_maintainer(bcbpt_scenario, discovery_interval_s=1.0)
        maintainer._discovery_sweep()
        assert network.topology.degree(node_id) >= before


class TestMaintainerLifecycle:
    def test_repair_timer_runs_periodically(self):
        scenario = build_scenario(
            "bcbpt",
            NetworkParameters(node_count=30, seed=5),
            latency_threshold_s=0.05,
            churn=ChurnSchedule(
                median_session_s=30.0,
                stable_fraction=0.0,
                mean_downtime_s=10.0,
                discovery_interval_s=2.0,
                repair_interval_s=5.0,
            ),
        )
        scenario.start_churn()
        scenario.simulator.run(until=60.0)
        maintainer = scenario.maintainer
        assert maintainer.repair_sweeps >= 5
        assert maintainer.churn.leave_events > 0
        maintainer.stop()
        sweeps = maintainer.repair_sweeps
        scenario.simulator.run(until=120.0)
        assert maintainer.repair_sweeps == sweeps

    def test_random_policy_orphans_fall_back_to_reconnection(self):
        """The repair sweep works for the non-clustering policy too (no
        clusters exist, so it reduces to overlay re-bridging)."""
        scenario = build_scenario("bitcoin", NetworkParameters(node_count=30, seed=5))
        maintainer = _make_maintainer(scenario)
        actions = maintainer.repair_clusters()
        assert actions == {
            "representatives_replaced": 0,
            "orphans_reassigned": 0,
            "bridges_created": 0,
        }
