"""Tests for the distance calculator (Eq. 1) and cluster bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import ClusterRegistry
from repro.core.distance import DistanceCalculator, DistanceEstimate
from repro.workloads.network_gen import NetworkParameters, build_network


@pytest.fixture
def network():
    return build_network(NetworkParameters(node_count=20, seed=9)).network


class TestDistanceEstimate:
    def test_threshold_rule_eq1(self):
        estimate = DistanceEstimate(node_a=0, node_b=1, mean_rtt_s=0.020, std_rtt_s=0.001, samples=3)
        assert estimate.is_close(0.025)
        assert not estimate.is_close(0.015)

    def test_threshold_must_be_positive(self):
        estimate = DistanceEstimate(node_a=0, node_b=1, mean_rtt_s=0.020, std_rtt_s=0.001, samples=3)
        with pytest.raises(ValueError):
            estimate.is_close(0.0)


class TestDistanceCalculator:
    def test_measure_returns_mean_and_variance(self, network):
        calc = DistanceCalculator(network, samples_per_pair=5)
        estimate = calc.measure(0, 1)
        assert estimate.samples == 5
        assert estimate.mean_rtt_s > 0
        assert estimate.std_rtt_s >= 0

    def test_self_measurement_rejected(self, network):
        calc = DistanceCalculator(network)
        with pytest.raises(ValueError):
            calc.measure(3, 3)

    def test_measurement_charges_ping_traffic(self, network):
        calc = DistanceCalculator(network, samples_per_pair=4)
        before = network.messages_sent.get("ping", 0)
        calc.measure(0, 1)
        assert network.messages_sent["ping"] == before + 4
        assert calc.ping_exchanges == 4

    def test_cache_avoids_remeasuring(self, network):
        calc = DistanceCalculator(network, samples_per_pair=3, cache=True)
        first = calc.measure(0, 1)
        pings_after_first = network.messages_sent["ping"]
        second = calc.measure(1, 0)
        assert second == first
        assert network.messages_sent["ping"] == pings_after_first

    def test_cache_disabled_remeasures(self, network):
        calc = DistanceCalculator(network, samples_per_pair=3, cache=False)
        calc.measure(0, 1)
        pings_after_first = network.messages_sent["ping"]
        calc.measure(0, 1)
        assert network.messages_sent["ping"] == pings_after_first + 3

    def test_clear_cache(self, network):
        calc = DistanceCalculator(network, samples_per_pair=2)
        calc.measure(0, 1)
        calc.clear_cache()
        pings_before = network.messages_sent["ping"]
        calc.measure(0, 1)
        assert network.messages_sent["ping"] == pings_before + 2

    def test_rank_by_distance_sorted(self, network):
        calc = DistanceCalculator(network)
        estimates = calc.rank_by_distance(0, list(range(1, 10)))
        rtts = [e.mean_rtt_s for e in estimates]
        assert rtts == sorted(rtts)

    def test_rank_excludes_origin(self, network):
        calc = DistanceCalculator(network)
        estimates = calc.rank_by_distance(0, [0, 1, 2])
        assert len(estimates) == 2

    def test_invalid_samples_rejected(self, network):
        with pytest.raises(ValueError):
            DistanceCalculator(network, samples_per_pair=0)

    def test_is_close_consistent_with_measure(self, network):
        calc = DistanceCalculator(network)
        estimate = calc.measure(0, 1)
        assert calc.is_close(0, 1, estimate.mean_rtt_s * 2) is True
        assert calc.is_close(0, 1, estimate.mean_rtt_s / 2) is False


class TestClusterRegistry:
    def test_create_cluster_assigns_founder(self):
        registry = ClusterRegistry()
        cluster = registry.create_cluster(7, created_at=1.0)
        assert 7 in cluster
        assert registry.cluster_of(7) is cluster
        assert cluster.size == 1

    def test_assign_moves_node(self):
        registry = ClusterRegistry()
        a = registry.create_cluster(1)
        b = registry.create_cluster(2)
        registry.assign(3, a.cluster_id)
        assert registry.are_same_cluster(1, 3)
        registry.assign(3, b.cluster_id)
        assert registry.are_same_cluster(2, 3)
        assert not registry.are_same_cluster(1, 3)
        assert a.size == 1

    def test_assign_to_missing_cluster_rejected(self):
        registry = ClusterRegistry()
        with pytest.raises(KeyError):
            registry.assign(1, 99)

    def test_remove_node_deletes_empty_cluster(self):
        registry = ClusterRegistry()
        cluster = registry.create_cluster(1)
        registry.remove_node(1)
        assert len(registry) == 0
        with pytest.raises(KeyError):
            registry.cluster(cluster.cluster_id)

    def test_remove_unassigned_node_is_noop(self):
        registry = ClusterRegistry()
        assert registry.remove_node(42) is None

    def test_refounding_moves_node_out(self):
        registry = ClusterRegistry()
        first = registry.create_cluster(1)
        registry.assign(2, first.cluster_id)
        registry.create_cluster(2)
        assert not registry.are_same_cluster(1, 2)

    def test_cluster_sizes_descending(self):
        registry = ClusterRegistry()
        a = registry.create_cluster(1)
        registry.assign(2, a.cluster_id)
        registry.assign(3, a.cluster_id)
        registry.create_cluster(10)
        assert registry.cluster_sizes() == [3, 1]

    def test_summary_empty(self):
        summary = ClusterRegistry().summary()
        assert summary["cluster_count"] == 0
        assert summary["assigned_nodes"] == 0

    def test_summary_populated(self):
        registry = ClusterRegistry()
        a = registry.create_cluster(1)
        registry.assign(2, a.cluster_id)
        registry.create_cluster(3)
        summary = registry.summary()
        assert summary["cluster_count"] == 2
        assert summary["assigned_nodes"] == 3
        assert summary["max_size"] == 2
        assert summary["min_size"] == 1

    def test_member_list_sorted(self):
        registry = ClusterRegistry()
        cluster = registry.create_cluster(5)
        registry.assign(2, cluster.cluster_id)
        registry.assign(9, cluster.cluster_id)
        assert cluster.member_list() == [2, 5, 9]

    @given(
        assignments=st.lists(
            st.tuples(st.integers(0, 30), st.booleans()), min_size=1, max_size=60
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_membership_invariants_property(self, assignments):
        """Every node belongs to at most one cluster; sizes sum to assigned nodes."""
        registry = ClusterRegistry()
        for node, found_new in assignments:
            existing = list(registry.clusters())
            if found_new or not existing:
                registry.create_cluster(node)
            else:
                registry.assign(node, existing[0].cluster_id)
        seen: set[int] = set()
        for cluster in registry.clusters():
            assert not (cluster.members & seen)
            seen |= cluster.members
        assert sum(registry.cluster_sizes()) == registry.assigned_nodes()
