"""Shared pytest fixtures.

Keeps ``src/`` importable even when the package has not been installed (the
offline environment lacks ``wheel``, so ``pip install -e .`` may be
unavailable; ``python setup.py develop`` is the supported fallback).
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - trivial path bookkeeping
    sys.path.insert(0, str(_SRC))

from repro.net.geo import GeoModel, GeoPosition  # noqa: E402
from repro.net.latency import LatencyModel, LatencyParameters  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.workloads.network_gen import NetworkParameters, build_network  # noqa: E402
from repro.workloads.scenarios import build_scenario  # noqa: E402


@pytest.fixture
def simulator() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=42)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator for direct model tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def geo_model(rng: np.random.Generator) -> GeoModel:
    """A geographic model with the default world regions."""
    return GeoModel(rng)


@pytest.fixture
def latency_model(rng: np.random.Generator) -> LatencyModel:
    """A latency model with default parameters."""
    return LatencyModel(rng, LatencyParameters())


@pytest.fixture
def positions(geo_model: GeoModel) -> list[GeoPosition]:
    """A handful of node positions."""
    return geo_model.sample_positions(10)


@pytest.fixture
def small_network():
    """A small built network (30 nodes) with no overlay yet."""
    return build_network(NetworkParameters(node_count=30, seed=7))


@pytest.fixture
def small_bitcoin_scenario():
    """A 40-node network wired by the vanilla Bitcoin policy."""
    return build_scenario("bitcoin", NetworkParameters(node_count=40, seed=5))


@pytest.fixture
def small_bcbpt_scenario():
    """A 40-node network wired by BCBPT at the paper's 25 ms threshold."""
    return build_scenario(
        "bcbpt", NetworkParameters(node_count=40, seed=5), latency_threshold_s=0.025
    )


@pytest.fixture
def small_lbc_scenario():
    """A 40-node network wired by the LBC geographic policy."""
    return build_scenario("lbc", NetworkParameters(node_count=40, seed=5))
