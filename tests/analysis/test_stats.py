"""Unit tests for the shared statistics core (`repro.analysis.stats`).

Closed-form cases pin the percentile/CDF math, equivalence tests pin the
"single implementation" contract with `DelayDistribution`, and determinism
tests pin the bootstrap (reports rely on it for byte-stable output).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import (
    ConfidenceInterval,
    Ecdf,
    StreamingQuantile,
    bootstrap_ci,
    clamped_mean,
    mean,
    percentile,
    sample_std,
    sample_variance,
    summarize_values,
)
from repro.measurement.stats import DelayDistribution


class TestBasics:
    def test_mean_is_sum_over_len(self):
        values = [0.1, 0.2, 0.7]
        assert mean(values) == sum(values) / len(values)

    def test_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            mean([])

    def test_clamped_mean_stays_inside_sample_range(self):
        values = [0.3] * 1000
        result = clamped_mean(values)
        assert min(values) <= result <= max(values)

    def test_variance_closed_form(self):
        # Var([1..5], ddof=1) = 2.5 exactly.
        assert sample_variance([1.0, 2.0, 3.0, 4.0, 5.0]) == 2.5
        assert sample_std([1.0, 2.0, 3.0, 4.0, 5.0]) == pytest.approx(2.5**0.5)

    def test_variance_below_two_samples_is_zero(self):
        assert sample_variance([4.2]) == 0.0

    def test_percentile_closed_form(self):
        values = list(range(101))  # 0..100: percentile q == q exactly
        for q in (0, 10, 25, 50, 75, 90, 100):
            assert percentile(values, q) == float(q)

    def test_percentile_validates_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_summarize_matches_delay_distribution_summary(self):
        rng = np.random.default_rng(7)
        samples = list(rng.exponential(0.05, size=400))
        assert summarize_values(samples) == DelayDistribution(samples).summary()


class TestEcdf:
    def test_closed_form_quarters(self):
        ecdf = Ecdf([1.0, 2.0, 3.0, 4.0])
        assert ecdf.evaluate(0.5) == 0.0
        assert ecdf.evaluate(1.0) == 0.25  # right-continuous: P(X <= 1) = 1/4
        assert ecdf.evaluate(2.5) == 0.5
        assert ecdf.evaluate(4.0) == 1.0
        assert ecdf.evaluate(99.0) == 1.0

    def test_curve_spans_sample_range_and_ends_at_one(self):
        ecdf = Ecdf([0.0, 1.0, 2.0, 3.0])
        curve = ecdf.curve(resolution=4)
        assert [x for x, _ in curve] == [0.0, 1.0, 2.0, 3.0]
        assert curve[-1][1] == 1.0

    def test_curve_on_shared_grid(self):
        ecdf = Ecdf([1.0, 3.0])
        assert ecdf.curve_on([0.0, 1.0, 2.0, 3.0]) == [
            (0.0, 0.0),
            (1.0, 0.5),
            (2.0, 0.5),
            (3.0, 1.0),
        ]

    def test_matches_delay_distribution_cdf(self):
        rng = np.random.default_rng(3)
        samples = list(rng.uniform(0.0, 1.0, size=257))
        dist = DelayDistribution(samples)
        grid = [0.1, 0.25, 0.5, 0.9]
        assert Ecdf(samples).evaluate_many(grid) == dist.cdf(grid)
        assert Ecdf(samples).curve(17) == dist.cdf_curve(17)

    def test_quantile_closed_form(self):
        ecdf = Ecdf(list(range(11)))
        assert ecdf.quantile(0.5) == 5.0
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Ecdf([])


class TestStreamingQuantile:
    def test_exact_below_six_samples(self):
        sq = StreamingQuantile(0.5)
        for value in (5.0, 1.0, 3.0):
            sq.add(value)
        assert sq.value() == 3.0
        assert sq.count == 3

    def test_requires_samples(self):
        with pytest.raises(ValueError):
            StreamingQuantile(0.5).value()

    def test_validates_quantile(self):
        with pytest.raises(ValueError):
            StreamingQuantile(0.0)

    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9])
    def test_converges_on_uniform_stream(self, q):
        rng = np.random.default_rng(11)
        samples = rng.uniform(0.0, 1.0, size=5000)
        sq = StreamingQuantile(q)
        for value in samples:
            sq.add(value)
        exact = float(np.quantile(samples, q))
        assert sq.value() == pytest.approx(exact, abs=0.03)

    def test_deterministic(self):
        samples = list(np.random.default_rng(2).normal(0.0, 1.0, size=1000))
        first = StreamingQuantile(0.9)
        second = StreamingQuantile(0.9)
        for value in samples:
            first.add(value)
            second.add(value)
        assert first.value() == second.value()


class TestBootstrap:
    def test_constant_data_degenerates_to_point(self):
        interval = bootstrap_ci([[2.0, 2.0], [2.0, 2.0]], n_resamples=50)
        assert interval.low == interval.high == interval.point == 2.0

    def test_deterministic_for_fixed_seed(self):
        groups = [list(np.random.default_rng(s).normal(10.0, 1.0, size=30)) for s in (1, 2, 3)]
        a = bootstrap_ci(groups, seed=0)
        b = bootstrap_ci(groups, seed=0)
        assert (a.low, a.high, a.point) == (b.low, b.high, b.point)
        # A wider confidence level must not shrink the interval.
        wide = bootstrap_ci(groups, seed=0, confidence=0.99)
        assert wide.low <= a.low and wide.high >= a.high

    def test_interval_brackets_point_and_true_mean(self):
        rng = np.random.default_rng(5)
        groups = [list(rng.normal(10.0, 1.0, size=200)) for _ in range(5)]
        interval = bootstrap_ci(groups)
        assert interval.low <= interval.point <= interval.high
        assert 10.0 in interval  # ConfidenceInterval.__contains__

    def test_single_group_resamples_values(self):
        interval = bootstrap_ci([[1.0, 2.0, 3.0, 4.0]], n_resamples=200)
        assert isinstance(interval, ConfidenceInterval)
        assert interval.low < interval.high

    def test_rejects_empty_and_bad_params(self):
        with pytest.raises(ValueError):
            bootstrap_ci([[]])
        with pytest.raises(ValueError):
            bootstrap_ci([[1.0]], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([[1.0]], n_resamples=0)
