"""Property-based tests for the P² streaming quantile estimator.

:class:`~repro.analysis.stats.StreamingQuantile` promises three things the
example-based tests in ``test_stats.py`` only spot-check: exactness up to
five samples, bounded estimates for arbitrary streams, and the marker
invariants of Jain & Chlamtac's recurrence.  Hypothesis explores those over
adversarial value streams; the convergence check uses seeded uniform draws so
the accuracy bound is a property, not a fluke of one seed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import StreamingQuantile

quantiles = st.floats(min_value=0.01, max_value=0.99, allow_nan=False)
samples = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestExactPhase:
    @given(q=quantiles, values=st.lists(samples, min_size=1, max_size=5))
    @settings(max_examples=200, deadline=None)
    def test_estimate_is_exact_up_to_five_samples(self, q, values):
        sq = StreamingQuantile(q)
        for value in values:
            sq.add(value)
        assert sq.value() == float(np.quantile(np.asarray(values, dtype=float), q))


class TestStreamInvariants:
    @given(q=quantiles, values=st.lists(samples, min_size=6, max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_estimate_stays_within_sample_range(self, q, values):
        sq = StreamingQuantile(q)
        for value in values:
            sq.add(value)
        assert min(values) <= sq.value() <= max(values)

    @given(q=quantiles, value=samples, count=st.integers(min_value=1, max_value=60))
    @settings(max_examples=100, deadline=None)
    def test_constant_stream_returns_the_constant(self, q, value, count):
        sq = StreamingQuantile(q)
        for _ in range(count):
            sq.add(value)
        assert sq.value() == value

    @given(q=quantiles, values=st.lists(samples, min_size=6, max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_marker_invariants_hold(self, q, values):
        """Positions stay strictly increasing, pinned at 1 and the sample
        count; marker heights stay sorted (the P² bracket invariant)."""
        sq = StreamingQuantile(q)
        for value in values:
            sq.add(value)
            if sq.count < 5:
                continue
            positions = sq._positions
            assert positions[0] == 1
            assert positions[4] == sq.count
            assert all(
                positions[i] < positions[i + 1] for i in range(4)
            ), positions
            heights = sq._heights
            assert all(heights[i] <= heights[i + 1] for i in range(4)), heights

    @given(q=quantiles, values=st.lists(samples, min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_count_tracks_stream_length(self, q, values):
        sq = StreamingQuantile(q)
        for value in values:
            sq.add(value)
        assert sq.count == len(values)


class TestConvergence:
    @given(
        q=st.sampled_from([0.1, 0.25, 0.5, 0.75, 0.9]),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_tracks_exact_quantile_on_uniform_streams(self, q, seed):
        """On a 2000-sample uniform stream the P² estimate lands close to the
        exact percentile — the rank-accuracy property the analysis layer
        relies on when it swaps stored samples for streaming counters."""
        rng = np.random.default_rng(seed)
        values = rng.uniform(0.0, 1.0, size=2000)
        sq = StreamingQuantile(q)
        for value in values:
            sq.add(value)
        exact = float(np.quantile(values, q))
        assert abs(sq.value() - exact) < 0.05
