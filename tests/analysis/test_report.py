"""Tests for `repro report` (`repro.analysis.report` + the CLI subcommand).

Pins the acceptance criteria: figures regenerate from stored raw samples
with no re-simulation, markdown is byte-stable across repeated invocations,
and legacy sample-less envelopes still load and report (tables only).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import figures as figures_mod
from repro.analysis.report import (
    build_figures,
    render_comparison,
    render_report,
    resolve_run_ref,
    sample_log_of,
    write_report,
)
from repro.experiments.api import run_experiment
from repro.experiments.cli import main
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult, ResultStore

TINY_ARGS = ["--nodes", "20", "--runs", "1", "--seeds", "3", "--measuring-nodes", "1"]


@pytest.fixture(scope="module")
def stored_run(tmp_path_factory):
    """One tiny fig3 run persisted to a module-scoped store."""
    store_dir = tmp_path_factory.mktemp("results")
    rc = main(["run", "fig3", *TINY_ARGS, "--results-dir", str(store_dir)])
    assert rc == 0
    store = ResultStore(store_dir)
    (run_id,) = store.run_ids("fig3")
    return store, run_id


class TestFigureRegeneration:
    def test_fig3_curves_come_from_stored_samples(self, stored_run):
        store, run_id = stored_run
        result = store.load(run_id)
        specs = build_figures(result, sample_log_of(result))
        delay_spec = next(s for s in specs if s.slug == "fig3-delay-coverage")
        assert "Fig. 3" in delay_spec.title
        labels = [curve.label for curve in delay_spec.curves]
        assert labels == ["bitcoin", "lbc", "bcbpt"]
        for curve in delay_spec.curves:
            fractions = [y for _, y in curve.points]
            assert fractions == sorted(fractions), "a CDF must be monotone"
            assert fractions[-1] == 1.0

    def test_fig4_regenerates_per_threshold(self, tmp_path):
        result = run_experiment(
            "fig4",
            ExperimentConfig(node_count=20, runs=1, seeds=(3,), measuring_nodes=1),
            {"thresholds_ms": (30.0, 60.0)},
        )
        specs = build_figures(result, sample_log_of(result))
        delay_spec = next(s for s in specs if s.slug == "fig4-delay-coverage")
        assert [c.label for c in delay_spec.curves] == ["bcbpt@30ms", "bcbpt@60ms"]

    def test_fallback_table_always_available(self, stored_run):
        store, run_id = stored_run
        result = store.load(run_id)
        specs = build_figures(result, sample_log_of(result))
        table = figures_mod.figure_table(specs[0])
        header = table.splitlines()[0]
        assert header == "| propagation delay (ms) | bitcoin | lbc | bcbpt |"

    def test_render_figure_without_matplotlib_returns_nothing(self, stored_run, tmp_path):
        store, run_id = stored_run
        result = store.load(run_id)
        specs = build_figures(result, sample_log_of(result))
        paths = figures_mod.render_figure(specs[0], tmp_path)
        if figures_mod.matplotlib_available():
            assert [p.suffix for p in paths] == [".png", ".svg"]
            assert all(p.stat().st_size > 0 for p in paths)
        else:
            assert paths == []


class TestWriteReport:
    def test_report_lands_in_run_dir_and_is_byte_stable(self, stored_run):
        store, run_id = stored_run
        first = write_report(store, run_id)
        assert first.markdown_path == store.run_dir(run_id) / "report.md"
        second = write_report(store, run_id)
        assert first.markdown == second.markdown
        assert first.markdown_path.read_bytes() == second.markdown_path.read_bytes()

    def test_report_contents(self, stored_run):
        store, run_id = stored_run
        markdown = write_report(store, run_id).markdown
        assert markdown.startswith("# Fig. 3:")
        assert f"`{run_id}`" in markdown
        assert "## Provenance" in markdown
        assert "## Verdicts" in markdown
        assert "## Percentiles — `delay_s` (ms)" in markdown
        assert "95% CI of mean" in markdown
        assert "## Figures" in markdown
        # No re-simulation markers: the report derives from the envelope only.
        assert "## Stored report sections" in markdown

    def test_out_dir_override(self, stored_run, tmp_path):
        store, run_id = stored_run
        artifacts = write_report(store, run_id, out_dir=tmp_path / "out")
        assert artifacts.markdown_path == tmp_path / "out" / "report.md"
        assert artifacts.markdown_path.exists()

    def test_legacy_envelope_reports_tables_only(self, stored_run, tmp_path):
        """A v1 envelope (no samples) still renders: summary tables, no
        percentile tables, no figures."""
        store, run_id = stored_run
        data = store.load(run_id).to_dict()
        del data["samples"]
        data["schema_version"] = 1
        legacy = ExperimentResult.from_dict(data)
        markdown = render_report(legacy, run_id="legacy")
        assert "legacy envelope" in markdown
        assert "## Stored summaries" in markdown
        assert "## Percentiles" not in markdown
        assert "## Figures" not in markdown

    def test_resolve_run_ref_forms(self, stored_run):
        store, run_id = stored_run
        assert resolve_run_ref(store, None) == run_id
        assert resolve_run_ref(store, "latest") == run_id
        assert resolve_run_ref(store, "fig3") == run_id
        assert resolve_run_ref(store, run_id) == run_id
        with pytest.raises(FileNotFoundError):
            resolve_run_ref(store, "fig4")
        with pytest.raises(FileNotFoundError):
            resolve_run_ref(ResultStore(store.root / "empty"), None)


class TestReportCli:
    def test_report_smoke(self, stored_run, capsys):
        store, run_id = stored_run
        rc = main(["report", run_id, "--results-dir", str(store.root)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "report:" in out

    def test_report_latest_default_with_stdout(self, stored_run, capsys):
        store, _ = stored_run
        rc = main(["report", "--results-dir", str(store.root), "--stdout"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "## Percentiles" in out

    def test_report_missing_run_fails_cleanly(self, tmp_path, capsys):
        rc = main(["report", "--results-dir", str(tmp_path / "none")])
        assert rc == 2
        assert "no stored runs" in capsys.readouterr().err

    def test_compare_smoke(self, stored_run, capsys):
        store, run_id = stored_run
        rc = main(
            ["report", "--compare", run_id, run_id, "--results-dir", str(store.root)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("# Comparison:")
        assert "(summaries identical)" in out
        assert "## Percentiles — `delay_s`" in out


class TestComparisonRendering:
    def test_detects_config_drift_and_verdict_columns(self, stored_run, tmp_path):
        store, run_id = stored_run
        baseline = store.load(run_id)
        drifted = baseline.to_dict()
        drifted["config"]["node_count"] = 25
        drifted["verdicts"] = {name: not v for name, v in baseline.verdicts.items()}
        other_store = ResultStore(tmp_path / "results")
        other_store.save(ExperimentResult.from_dict(drifted))
        # Copy the baseline into the same store so both refs resolve there.
        other_store.save(baseline)
        ids = other_store.run_ids("fig3")
        markdown = render_comparison(other_store, ids[0], ids[1])
        assert "`node_count`" in markdown
        assert "changed" in markdown
