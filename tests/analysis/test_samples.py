"""Tests for the raw-sample capture layer (`repro.analysis.samples`).

Covers the SampleLog structure and its JSON transport (NaN-safe), the
envelope round-trip including the legacy sample-less path, worker-count
invariance of the persisted samples, and the shared block-arrival recorder.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.samples import (
    SAMPLES_SCHEMA_VERSION,
    BlockArrivalRecorder,
    SampleLog,
)
from repro.experiments.api import run_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import RESULT_SCHEMA_VERSION, ExperimentResult

TINY = dict(node_count=20, runs=1, seeds=(3,), measuring_nodes=1)


def make_log() -> SampleLog:
    log = SampleLog()
    log.extend("bcbpt", "delay_s", [0.01, 0.02, float("nan")], seed=3, unit="s")
    log.extend("bcbpt", "delay_s", [0.03], seed=11, unit="s")
    log.extend("bitcoin", "delay_s", [0.2, 0.4], seed=3, unit="s")
    log.add_point("bcbpt", "rank_variance_s2", 1.0, 2e-5, unit="s^2")
    log.add_point("bcbpt", "rank_variance_s2", 2.0, 3e-5, unit="s^2")
    return log


class TestSampleLog:
    def test_access_helpers(self):
        log = make_log()
        assert log.labels() == ["bcbpt", "bitcoin"]
        assert log.metrics() == ["delay_s"]
        assert log.values("bcbpt", "delay_s")[:2] == [0.01, 0.02]
        assert len(log.values("bcbpt", "delay_s")) == 4  # pooled across seeds
        assert set(log.per_seed("bcbpt", "delay_s")) == {3, 11}
        assert log.points("bcbpt", "rank_variance_s2") == [(1.0, 2e-5), (2.0, 3e-5)]
        assert log.sample_count() == 6
        assert bool(log) and len(log) == 4  # 3 series + 1 time series

    def test_add_per_seed_preserves_order(self):
        log = SampleLog()
        log.add_per_seed("x", "delay_s", {11: [1.0], 3: [2.0]}, unit="s")
        assert [series.seed for series in log.series()] == [11, 3]
        assert log.values("x", "delay_s") == [1.0, 2.0]

    def test_json_round_trip_preserves_nan(self):
        log = make_log()
        data = json.loads(json.dumps(log.to_dict()))
        clone = SampleLog.from_dict(data)
        original = log.values("bcbpt", "delay_s")
        restored = clone.values("bcbpt", "delay_s")
        assert len(original) == len(restored)
        for old, new in zip(original, restored):
            assert old == new or (math.isnan(old) and math.isnan(new))
        assert clone.points("bcbpt", "rank_variance_s2") == log.points(
            "bcbpt", "rank_variance_s2"
        )
        assert data["schema_version"] == SAMPLES_SCHEMA_VERSION

    def test_from_dict_accepts_empty_and_none(self):
        assert not SampleLog.from_dict(None)
        assert not SampleLog.from_dict({})

    def test_from_dict_rejects_newer_schema(self):
        with pytest.raises(ValueError, match="newer"):
            SampleLog.from_dict({"schema_version": SAMPLES_SCHEMA_VERSION + 1})

    def test_merge_concatenates_same_key_series(self):
        a = SampleLog()
        a.extend("x", "delay_s", [1.0], seed=3)
        b = SampleLog()
        b.extend("x", "delay_s", [2.0], seed=3)
        b.add_point("x", "coverage", 0.0, 1.0)
        merged = a.merge(b)
        assert merged.values("x", "delay_s") == [1.0, 2.0]
        assert merged.points("x", "coverage") == [(0.0, 1.0)]
        # inputs untouched
        assert a.values("x", "delay_s") == [1.0]


class TestEnvelopeRoundTrip:
    def test_samples_survive_serialize_load_diff(self):
        result = run_experiment("fig3", ExperimentConfig(**TINY))
        assert result.samples["series"], "fig3 must persist raw series"
        clone = ExperimentResult.from_json(result.to_json())
        assert clone.samples == json.loads(json.dumps(result.samples))
        # Raw samples are not diffed; identical runs stay identical.
        assert result.diff(clone).identical

    def test_legacy_v1_envelope_without_samples_loads(self):
        result = run_experiment("fig3", ExperimentConfig(**TINY))
        data = result.to_dict()
        del data["samples"]
        data["schema_version"] = 1
        legacy = ExperimentResult.from_dict(data)
        assert legacy.samples == {}
        assert legacy.summaries == result.summaries
        assert legacy.render() == result.render()

    def test_schema_version_bumped_for_samples(self):
        assert RESULT_SCHEMA_VERSION >= 2


class TestWorkerInvariance:
    @pytest.mark.parametrize("experiment", ["fig3", "relay_comparison"])
    def test_samples_identical_for_workers_1_and_2(self, experiment):
        """The envelope's samples field — series order, seeds and every raw
        value — must not depend on the worker count."""
        options = {}
        config = dict(TINY, seeds=(3, 11))
        if experiment == "relay_comparison":
            options = {
                "relays": ("flood",),
                "protocols": ("bitcoin",),
                "blocks": 1,
                "txs_per_block": 2,
            }
        serial = run_experiment(
            experiment, ExperimentConfig(**config, workers=1), options
        )
        parallel = run_experiment(
            experiment, ExperimentConfig(**config, workers=2), options
        )
        assert serial.samples == parallel.samples
        assert serial.samples["series"], "expected raw series to be persisted"


class TestBlockArrivalRecorder:
    class _StubNode:
        def __init__(self):
            self.block_listeners = []

    class _StubBlock:
        def __init__(self, block_hash):
            self.block_hash = block_hash

    def test_records_and_excludes(self):
        nodes = [self._StubNode() for _ in range(3)]
        recorder = BlockArrivalRecorder()
        recorder.attach(nodes)
        assert all(node.block_listeners == [recorder.observe] for node in nodes)
        block = self._StubBlock("abc")
        recorder.observe(0, block, 10.0)
        recorder.observe(2, block, 11.5)
        recorder.observe(1, block, 12.0)
        assert recorder.receivers("abc") == {0: 10.0, 2: 11.5, 1: 12.0}
        assert recorder.delays("abc", 10.0, exclude=(0,)) == [1.5, 2.0]
        assert recorder.delays("missing", 0.0) == []
