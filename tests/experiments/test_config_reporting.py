"""Tests for experiment configuration and reporting utilities."""

import argparse

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentReport, format_delay_summaries, format_table
from repro.measurement.stats import DelayDistribution


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.funding_outputs == config.runs + 2

    def test_explicit_funding_outputs_win(self):
        config = ExperimentConfig(funding_outputs_per_node=50)
        assert config.funding_outputs == 50

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(node_count=5)
        with pytest.raises(ValueError):
            ExperimentConfig(runs=0)
        with pytest.raises(ValueError):
            ExperimentConfig(seeds=())
        with pytest.raises(ValueError):
            ExperimentConfig(latency_threshold_s=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(fig4_thresholds_s=(0.03, -0.01))

    def test_with_overrides(self):
        config = ExperimentConfig().with_overrides(node_count=500)
        assert config.node_count == 500

    def test_cli_round_trip(self):
        parser = argparse.ArgumentParser()
        ExperimentConfig.add_arguments(parser)
        args = parser.parse_args(
            ["--nodes", "300", "--runs", "7", "--seeds", "1", "2", "--threshold-ms", "40"]
        )
        config = ExperimentConfig.from_args(args)
        assert config.node_count == 300
        assert config.runs == 7
        assert config.seeds == (1, 2)
        assert config.latency_threshold_s == pytest.approx(0.040)

    def test_cli_defaults_keep_base(self):
        parser = argparse.ArgumentParser()
        ExperimentConfig.add_arguments(parser)
        args = parser.parse_args([])
        base = ExperimentConfig(node_count=123)
        assert ExperimentConfig.from_args(args, base) == base

    def test_legacy_builder_aliases_still_work(self):
        parser = argparse.ArgumentParser()
        ExperimentConfig.add_cli_arguments(parser)
        args = parser.parse_args(["--nodes", "50"])
        assert ExperimentConfig.from_cli(args).node_count == 50


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_column_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.123457" in text

    def test_delay_summary_table(self):
        summaries = {
            "bitcoin": DelayDistribution([0.2, 0.3, 0.4]).summary(),
            "bcbpt": DelayDistribution([0.02, 0.03]).summary(),
        }
        text = format_delay_summaries(summaries)
        assert "bitcoin" in text and "bcbpt" in text
        assert "mean_ms" in text


class TestExperimentReport:
    def test_sections_render_in_order(self):
        report = ExperimentReport("X", "desc")
        report.add_section("first", "body1")
        report.add_section("second", "body2")
        text = report.render()
        assert text.index("first") < text.index("second")
        assert "X: desc" in text

    def test_data_attachment(self):
        report = ExperimentReport("X", "desc")
        report.add_data("key", [1, 2, 3])
        assert report.data["key"] == [1, 2, 3]

    def test_str_matches_render(self):
        report = ExperimentReport("X", "desc")
        assert str(report) == report.render()
