"""Churn-resilience experiment: determinism, worker invariance, validation.

Property-based coverage of the kernel's determinism contract under dynamic
membership: the same master seed must yield the *identical* event trace —
with and without churn — and the churn experiment's pooled aggregates must be
invariant to the worker count used to fan its jobs out.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.churn_resilience import (
    CHURN_LEVELS,
    build_report,
    resolve_levels,
    run_churn_resilience,
)
from repro.experiments.config import ExperimentConfig
from repro.workloads.generators import TransactionWorkload, WorkloadConfig, fund_nodes
from repro.workloads.network_gen import NetworkParameters
from repro.workloads.scenarios import ChurnSchedule, build_scenario

#: A short, hard-churning schedule for determinism runs.
FAST_CHURN = ChurnSchedule(
    median_session_s=8.0,
    sigma=0.8,
    stable_fraction=0.0,
    mean_downtime_s=3.0,
    discovery_interval_s=2.0,
    repair_interval_s=5.0,
)


def _trace_of(seed: int, *, churn: ChurnSchedule | None, horizon_s: float = 40.0):
    """Build, run and fingerprint one simulation's full event trace.

    A background payment workload generates real protocol traffic (INV,
    GETDATA, TX relay), so the fingerprint covers message scheduling and
    delivery, not just the churn bookkeeping.
    """
    scenario = build_scenario(
        "bcbpt",
        NetworkParameters(node_count=20, seed=seed, trace=True),
        latency_threshold_s=0.05,
        churn=churn,
    )
    simulated = scenario.network
    fund_nodes(list(simulated.nodes.values()), outputs_per_node=30)
    workload = TransactionWorkload(
        simulated.simulator,
        simulated.nodes,
        simulated.simulator.random.stream("trace-workload"),
        WorkloadConfig(transactions_per_second=1.0, sender_count=5),
    )
    workload.start()
    if churn is not None:
        scenario.start_churn()
    scenario.simulator.run(until=horizon_s)
    return [
        (record.time, record.category, record.subject, repr(record.detail))
        for record in scenario.simulator.tracer.records()
    ]


class TestKernelDeterminism:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_same_seed_same_trace_without_churn(self, seed):
        assert _trace_of(seed, churn=None) == _trace_of(seed, churn=None)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_same_seed_same_trace_with_churn(self, seed):
        first = _trace_of(seed, churn=FAST_CHURN)
        second = _trace_of(seed, churn=FAST_CHURN)
        assert first == second
        # The run produced real traffic — otherwise this test proves nothing.
        assert len(first) > 0

    def test_rebuilding_the_same_dynamic_scenario_is_deterministic(self):
        """Two independent builds of the same churn scenario agree on churn
        volume, not just on the message trace."""

        def run_once():
            scenario = build_scenario(
                "bcbpt",
                NetworkParameters(node_count=20, seed=77),
                latency_threshold_s=0.05,
                churn=FAST_CHURN,
            )
            scenario.start_churn()
            scenario.simulator.run(until=60.0)
            maintainer = scenario.maintainer
            return (
                maintainer.churn.leave_events,
                maintainer.churn.join_events,
                maintainer.repair_sweeps,
                maintainer.orphans_reassigned,
                maintainer.representatives_replaced,
                sorted(scenario.network.network.online_node_ids()),
            )

        first = run_once()
        assert first == run_once()
        assert first[0] > 0, "the schedule must actually churn"


def _tiny_config(seeds: tuple[int, ...], workers: int) -> ExperimentConfig:
    return ExperimentConfig(
        node_count=30,
        runs=1,
        seeds=seeds,
        measuring_nodes=1,
        run_timeout_s=15.0,
        workers=workers,
    )


def _fingerprint(results) -> dict:
    return {
        key: (
            tuple(result.delays.samples),
            tuple(sorted(result.per_seed)),
            tuple(result.coverages),
            result.leave_events,
            result.join_events,
            result.repair_sweeps,
            result.orphans_reassigned,
            result.representatives_replaced,
            result.bridges_created,
            tuple(sorted((s, tuple(sorted(v.items()))) for s, v in result.cluster_after.items())),
        )
        for key, result in results.items()
    }


class TestWorkerInvariance:
    @given(seed_pair=st.tuples(st.integers(0, 500), st.integers(501, 1000)))
    @settings(max_examples=2, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_churn_experiment_is_worker_count_invariant(self, seed_pair):
        serial = run_churn_resilience(
            _tiny_config(seed_pair, workers=1),
            protocols=("bcbpt",),
            levels=("heavy",),
        )
        parallel = run_churn_resilience(
            _tiny_config(seed_pair, workers=2),
            protocols=("bcbpt",),
            levels=("heavy",),
        )
        assert _fingerprint(serial) == _fingerprint(parallel)

    def test_static_and_dynamic_levels_merge_across_protocols(self):
        results = run_churn_resilience(
            _tiny_config((3,), workers=1),
            protocols=("bitcoin", "bcbpt"),
            levels=("static", "heavy"),
        )
        assert set(results) == {
            "bitcoin/static",
            "bitcoin/heavy",
            "bcbpt/static",
            "bcbpt/heavy",
        }
        for key, result in results.items():
            if result.level == "static":
                assert result.leave_events == 0
                assert result.join_events == 0
            assert len(result.delays) > 0
        report = build_report(results)
        rendered = report.render()
        assert "Δt under churn" in rendered
        assert "bcbpt/heavy" in rendered


class TestValidation:
    def test_unknown_protocol_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown policy"):
            run_churn_resilience(_tiny_config((3,), workers=1), protocols=("bitcion",))

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown churn level"):
            run_churn_resilience(_tiny_config((3,), workers=1), levels=("hurricane",))

    def test_resolve_levels_accepts_overrides(self):
        custom = ChurnSchedule(median_session_s=10.0)
        resolved = resolve_levels(("static", "custom"), {"custom": custom})
        assert resolved == {"static": None, "custom": custom}

    def test_builtin_levels_are_well_formed(self):
        assert CHURN_LEVELS["static"] is None
        for name, schedule in CHURN_LEVELS.items():
            if schedule is not None:
                assert schedule.median_session_s > 0
                assert 0.0 <= schedule.stable_fraction <= 1.0
