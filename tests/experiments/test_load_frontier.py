"""Tests for the Ext-9 load-frontier experiment.

Covers registration, the driver's pooled merge, the saturation detector, the
worker-count-invariance contract (the P²-scalars-only merge is the whole
reason :class:`~repro.experiments.parallel.LoadJobResult` carries no raw
latency series), and the streamed-quantile exactness regression: on runs
small enough that the P² estimator is still in its exact phase, the streamed
confirmation summary must equal the exact ``percentile()`` of the same
samples.
"""

import math

import pytest

from repro.analysis.stats import StreamingQuantile, percentile
from repro.experiments.api import experiment_names, get_experiment, run_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.load_frontier import (
    DEFAULT_RATES,
    LOAD_PROTOCOLS,
    bcbpt_advantage_under_load,
    build_report,
    cell_label,
    collect_samples,
    confirms_at_every_rate,
    run_load_frontier,
    saturation_point_tps,
)

TINY = ExperimentConfig(node_count=12, runs=1, seeds=(3, 11), measuring_nodes=1)

#: Cell parameters sized so the congested rate visibly saturates in ~60
#: simulated seconds: ~3 tx/s of block capacity against 1 and 6 tx/s.  The
#: 4 s block interval gives every seed ~15 blocks, enough that Poisson block
#: droughts do not starve the light cell's drain; the heavy cell pins its
#: capped mempools and starts fee-evicting.
TINY_KWARGS = dict(
    rates=(1.0, 6.0),
    profile_kind="constant",
    horizon_s=60.0,
    block_interval_s=4.0,
    max_block_bytes=3_000,
    mempool_max_size=60,
    confirmation_depth=2,
    mean_fee_satoshi=200.0,
    funding_outputs=4,
)


@pytest.fixture(scope="module")
def tiny_results():
    return run_load_frontier(TINY, protocols=("bitcoin", "bcbpt"), **TINY_KWARGS)


class TestRegistration:
    def test_registered(self):
        assert "load_frontier" in experiment_names()
        spec = get_experiment("load_frontier")
        assert spec.experiment_id == "Ext-9"
        assert spec.exit_verdict == "confirms_at_every_rate"
        assert set(spec.verdicts) == {
            "confirms_at_every_rate",
            "bcbpt_advantage_under_load",
            "bcbpt_saturates_no_earlier",
        }
        assert LOAD_PROTOCOLS == ("bitcoin", "bcbpt")
        assert len(DEFAULT_RATES) >= 3

    def test_option_validation(self):
        with pytest.raises(ValueError, match="at least one offered rate"):
            run_load_frontier(TINY, rates=())
        with pytest.raises(ValueError, match="rates must be positive"):
            run_load_frontier(TINY, rates=(0.0,))
        with pytest.raises(ValueError, match="profile kind"):
            run_load_frontier(TINY, profile_kind="surge")
        with pytest.raises(ValueError, match="horizon_s"):
            run_load_frontier(TINY, horizon_s=0.0)
        with pytest.raises(ValueError, match="confirmation_depth"):
            run_load_frontier(TINY, confirmation_depth=0)


class TestDriver:
    def test_cells_and_merge(self, tiny_results):
        expected_keys = {
            cell_label(protocol, rate)
            for protocol in ("bitcoin", "bcbpt")
            for rate in TINY_KWARGS["rates"]
        }
        assert set(tiny_results) == expected_keys
        for cell in tiny_results.values():
            assert cell.seeds == list(TINY.seeds)
            assert cell.txs_generated > 0
            assert cell.txs_confirmed > 0
            assert cell.blocks_mined > 0
            assert cell.events > 0
            assert cell.total_fees_collected > 0
            assert set(cell.p50_by_seed) == set(TINY.seeds)
            assert cell.p99_latency_s() >= cell.p50_latency_s() - 1e-9

    def test_congestion_raises_latency_and_fills_blocks(self, tiny_results):
        for protocol in ("bitcoin", "bcbpt"):
            light = tiny_results[cell_label(protocol, 1.0)]
            heavy = tiny_results[cell_label(protocol, 6.0)]
            assert heavy.full_block_fraction() > light.full_block_fraction()
            assert heavy.backlog_final() > light.backlog_final()
            assert heavy.p99_latency_s() > light.p99_latency_s()

    def test_saturation_detected_at_the_congested_rate(self, tiny_results):
        for protocol in ("bitcoin", "bcbpt"):
            assert not tiny_results[cell_label(protocol, 1.0)].is_saturated()
            assert tiny_results[cell_label(protocol, 6.0)].is_saturated()
            assert saturation_point_tps(tiny_results, protocol) == 6.0

    def test_verdicts_and_report(self, tiny_results):
        assert confirms_at_every_rate(tiny_results)
        assert isinstance(bcbpt_advantage_under_load(tiny_results), bool)
        rendered = build_report(tiny_results).render()
        assert "Latency-vs-load frontier" in rendered
        assert "Saturation points" in rendered

    def test_collect_samples_series(self, tiny_results):
        log = collect_samples(tiny_results)
        for key, cell in tiny_results.items():
            per_seed = log.per_seed(key, "confirmation_p50_s")
            assert set(per_seed) == set(TINY.seeds)
            for seed, values in per_seed.items():
                assert values == [cell.p50_by_seed[seed]]
            assert log.points(key, "mempool_backlog")


class TestWorkerInvariance:
    def test_workers_do_not_change_any_aggregate(self):
        """The whole merge is per-seed scalars in submission order, so two
        workers must reproduce the serial run bit-for-bit."""
        kwargs = dict(TINY_KWARGS, rates=(1.0, 4.0))
        serial = run_load_frontier(
            TINY.with_overrides(workers=1), protocols=("bitcoin",), **kwargs
        )
        fanned = run_load_frontier(
            TINY.with_overrides(workers=2), protocols=("bitcoin",), **kwargs
        )
        assert set(serial) == set(fanned)
        for key in serial:
            assert serial[key].summary() == fanned[key].summary()
        assert collect_samples(serial).to_dict() == collect_samples(fanned).to_dict()


class RecordingQuantile(StreamingQuantile):
    """StreamingQuantile that also stores its stream (the test oracle)."""

    def __init__(self, q):
        super().__init__(q)
        self.samples = []

    def add(self, value):
        self.samples.append(float(value))
        super().add(value)


class TestStreamingExactness:
    def test_streamed_summary_is_exact_on_small_runs(self):
        """≤5-sample exactness contract, end to end: drive a real cell whose
        confirmation count stays in the P² exact phase and check the streamed
        p50/p99 against ``percentile()`` over the recorded stream."""
        from repro.protocol.mining import MiningProcess, equal_hash_power
        from repro.workloads.generators import fund_nodes
        from repro.workloads.network_gen import NetworkParameters, build_network
        from repro.workloads.traffic import (
            ConfirmationTracker,
            TrafficModel,
            TrafficProfile,
        )

        simulated = build_network(NetworkParameters(node_count=10, seed=7))
        ids = simulated.node_ids()
        for index, node_id in enumerate(ids):
            simulated.network.connect(node_id, ids[(index + 1) % len(ids)])
            simulated.network.connect(node_id, ids[(index + 3) % len(ids)])
        fund_nodes(list(simulated.nodes.values()), outputs_per_node=3)
        tracker = ConfirmationTracker(simulated.node(ids[0]), depth=2)
        tracker.p50 = RecordingQuantile(0.5)
        tracker.p99 = RecordingQuantile(0.99)
        traffic = TrafficModel(
            simulated.simulator,
            simulated.nodes,
            profile=TrafficProfile(kind="constant", rate_tps=0.12),
            tracker=tracker,
        )
        mining = MiningProcess(
            simulated.simulator,
            simulated.nodes,
            equal_hash_power(ids),
            simulated.simulator.random.stream("load-mining"),
            block_interval_s=10.0,
        )
        traffic.start()
        mining.start()
        simulated.simulator.run(until=70.0)
        traffic.stop()
        mining.stop()

        samples = tracker.p50.samples
        assert 1 <= tracker.confirmed <= 5, "cell sized for the exact phase"
        assert tracker.p50.value() == percentile(samples, 50)
        assert tracker.p99.value() == percentile(samples, 99)
        assert tracker.latency_max == max(samples)
        assert not math.isnan(tracker.mean_latency)
