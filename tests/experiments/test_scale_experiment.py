"""Tests for the scale plane: snapshots, snapshot-backed golden runs, Ext-8.

Two contracts gate the tentpole changes here:

* **snapshot stream-exactness** — build→save→load→run must be byte-identical
  to build→run, so the snapshot-backed Fig. 3 comparison reproduces the same
  golden fingerprints as the rebuild-per-job path, for any worker count;
* **the scale experiment itself** — jobs are picklable, cells complete, and
  the envelope carries the nodes-vs-resource curves.
"""

import hashlib
import pickle

import pytest

from repro.experiments.api import get_experiment, run_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import ScaleJob
from repro.experiments.runner import run_protocol_comparison
from repro.experiments.scale import (
    DEFAULT_PRUNE_DEPTH,
    SCALE_PROTOCOLS,
    build_report,
    default_ladder,
    run_scale,
    scale_parameters,
)
from repro.workloads.network_gen import (
    NetworkParameters,
    build_network,
    ensure_network_snapshot,
    load_network,
    save_network,
)
from repro.workloads.scenarios import build_scenario

from tests.experiments.test_relay_experiment import (
    GOLDEN_CONFIG,
    GOLDEN_FIG3_DIGESTS,
    _digest,
)

SMALL = ExperimentConfig(
    node_count=30, runs=1, seeds=(3,), measuring_nodes=1, run_timeout_s=30.0
)


class TestSnapshotRoundTrip:
    def test_load_reproduces_build_exactly(self, tmp_path):
        """build→save→load→policy→campaign ≡ build→policy→campaign."""
        parameters = NetworkParameters(node_count=30, seed=9)
        path = save_network(build_network(parameters), tmp_path / "net.pkl")

        fresh = build_scenario("bcbpt", parameters, latency_threshold_s=0.025)
        loaded = build_scenario(
            "bcbpt", latency_threshold_s=0.025, snapshot=path
        )
        assert loaded.network.parameters == fresh.network.parameters
        assert loaded.build_report == fresh.build_report
        edges = lambda scenario: sorted(
            (link.node_a, link.node_b, link.is_cluster_link, link.is_long_link)
            for link in scenario.network.network.topology.links()
        )
        assert edges(loaded) == edges(fresh)

    def test_snapshot_requires_quiescent_network(self, tmp_path):
        simulated = build_network(NetworkParameters(node_count=20, seed=1))
        simulated.simulator.schedule(1.0, lambda: None, label="pending")
        with pytest.raises(ValueError, match="pending"):
            save_network(simulated, tmp_path / "busy.pkl")

    def test_load_rejects_foreign_pickles(self, tmp_path):
        path = tmp_path / "junk.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"not": "a network"}, handle)
        with pytest.raises(TypeError):
            load_network(path)

    def test_ensure_snapshot_caches_by_parameters(self, tmp_path):
        parameters = NetworkParameters(node_count=20, seed=4)
        first = ensure_network_snapshot(parameters, tmp_path)
        stamp = first.stat().st_mtime_ns
        second = ensure_network_snapshot(parameters, tmp_path)
        assert second == first
        assert second.stat().st_mtime_ns == stamp  # reused, not rebuilt
        other = ensure_network_snapshot(
            NetworkParameters(node_count=20, seed=5), tmp_path
        )
        assert other != first

    def test_scenario_rejects_mismatched_parameters(self, tmp_path):
        path = ensure_network_snapshot(NetworkParameters(node_count=20, seed=4), tmp_path)
        with pytest.raises(ValueError, match="different NetworkParameters"):
            build_scenario(
                "bitcoin", NetworkParameters(node_count=20, seed=5), snapshot=path
            )

    def test_scenario_rejects_dynamic_overrides(self, tmp_path):
        from repro.workloads.scenarios import ChurnSchedule

        path = ensure_network_snapshot(NetworkParameters(node_count=20, seed=4), tmp_path)
        with pytest.raises(ValueError, match="static flood"):
            build_scenario("bitcoin", snapshot=path, churn=ChurnSchedule())


class TestSnapshotGoldenFingerprints:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_snapshot_backed_fig3_matches_golden_digests(self, workers, tmp_path):
        """THE gate: the snapshot-reuse path must reproduce the pre-snapshot
        Δt streams byte-for-byte, serial and fan-out alike."""
        results = run_protocol_comparison(
            ("bitcoin", "lbc", "bcbpt"),
            GOLDEN_CONFIG.with_overrides(workers=workers),
            snapshot_dir=tmp_path,
        )
        for name, expected in GOLDEN_FIG3_DIGESTS.items():
            assert _digest(results[name].delays.samples) == expected, (
                f"{name} (workers={workers}, snapshot-backed) diverged from the "
                "golden baseline"
            )


class TestScaleExperiment:
    def test_registered_with_spec(self):
        spec = get_experiment("scale")
        assert spec.experiment_id == "Ext-8"
        assert spec.exit_verdict == "all_cells_completed"
        assert {o.dest for o in spec.options} >= {
            "node_counts", "protocols", "prune_depth", "cell_runs", "profile_memory",
        }

    def test_default_ladder_shape(self):
        assert default_ladder(10_000) == (2500, 5000, 10_000)
        assert default_ladder(40) == (20, 40)  # quarter/half clamp to the floor
        assert SCALE_PROTOCOLS == ("bitcoin", "bcbpt")
        assert DEFAULT_PRUNE_DEPTH == 6

    def test_scale_job_is_picklable(self):
        job = ScaleJob(
            node_count=100, protocol="bcbpt", seed=3, threshold_s=0.025,
            prune_depth=6, cell_runs=1, profile_memory=True,
            snapshot_path="/tmp/x.pkl", config=SMALL,
        )
        assert pickle.loads(pickle.dumps(job)) == job

    def test_runs_end_to_end(self):
        results = run_scale(
            SMALL, node_counts=(20, 30), protocols=("bitcoin",), cell_runs=1
        )
        assert set(results) == {"bitcoin@20", "bitcoin@30"}
        for result in results.values():
            assert len(result.cells) == len(SMALL.seeds)
            for cell in result.cells:
                assert cell.events > 0
                assert cell.delay_samples > 0
                assert cell.build_s >= 0.0
                assert cell.rss_mb > 0.0
                assert cell.peak_traced_mb is not None
        report = build_report(results)
        text = report.render()
        assert "Ext-8" in text
        assert "events/s" in text

    def test_prune_depth_zero_disables_pruning(self):
        results = run_scale(
            SMALL, node_counts=(20,), protocols=("bitcoin",), cell_runs=1,
            prune_depth=0, profile_memory=False,
        )
        (result,) = results.values()
        assert all(cell.state_prunes == 0 for cell in result.cells)
        assert all(cell.peak_traced_mb is None for cell in result.cells)

    def test_envelope_and_verdicts(self):
        run = run_experiment(
            "scale",
            SMALL,
            {"node_counts": (20,), "protocols": ("bitcoin",), "cell_runs": 1},
        )
        assert run.verdicts["all_cells_completed"]
        assert "bitcoin@20" in run.summaries
        assert run.summaries["bitcoin@20"]["mean_events_per_s"] > 0
        curves = {
            (curve["label"], curve["metric"]) for curve in run.samples["timeseries"]
        }
        assert ("bitcoin", "wall_s") in curves
        assert ("bitcoin", "rss_mb") in curves

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="at least"):
            run_scale(SMALL, node_counts=(5,))
        with pytest.raises(ValueError, match="cell_runs"):
            run_scale(SMALL, node_counts=(20,), cell_runs=0)
        with pytest.raises(ValueError, match="prune_depth"):
            run_scale(SMALL, node_counts=(20,), prune_depth=-1)
        with pytest.raises(ValueError, match="unknown policy"):
            run_scale(SMALL, node_counts=(20,), protocols=("bitcion",))

    def test_scale_parameters_shared_cache_key(self):
        # Driver and worker must agree bit-for-bit on the snapshot filename.
        a = scale_parameters(100, 3, 6)
        b = scale_parameters(100, 3, 6)
        assert repr(a) == repr(b)
        assert (
            hashlib.sha256(repr(a).encode()).hexdigest()
            == hashlib.sha256(repr(b).encode()).hexdigest()
        )
