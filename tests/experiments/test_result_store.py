"""Tests for the ExperimentResult envelope and the persistent ResultStore."""

import json
import math

import pytest

from repro.experiments.results import (
    ExperimentResult,
    ResultStore,
    diff_results,
    json_safe,
)


def make_result(**overrides) -> ExperimentResult:
    fields = dict(
        experiment="fig3",
        experiment_id="Fig. 3",
        title="test result",
        created_at=1_800_000_000.0,
        config={"node_count": 40, "seeds": [5], "workers": 1},
        options={"races": 2},
        seeds=[5],
        summaries={
            "bitcoin": {"mean_s": 0.18, "variance_s2": 8e-3, "count": 15},
            "bcbpt": {"mean_s": 0.02, "variance_s2": 1e-4, "count": 6},
        },
        verdicts={"paper_ordering": True},
        sections=[("Delay summary", "protocol  mean\nbitcoin  180")],
        extras={"duration_s": 1.5},
    )
    fields.update(overrides)
    return ExperimentResult(**fields)


class TestJsonSafe:
    def test_plain_and_nested_structures(self):
        assert json_safe({"a": (1, 2), "b": {3, 1}}) == {"a": [1, 2], "b": [1, 3]}

    def test_dataclasses_become_dicts(self):
        from repro.experiments.threshold_sweep import ThresholdPoint

        point = ThresholdPoint(
            threshold_s=0.025,
            mean_delay_s=0.02,
            median_delay_s=0.02,
            variance_s2=1e-4,
            p90_delay_s=0.03,
            cluster_count=5.0,
            mean_cluster_size=4.0,
            mean_link_rtt_s=0.07,
            long_link_fraction=0.5,
        )
        assert json_safe(point)["threshold_s"] == 0.025

    def test_unserialisable_objects_fall_back_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert json_safe({"x": Opaque()}) == {"x": "<opaque>"}


class TestEnvelopeRoundTrip:
    def test_json_round_trip_identity(self):
        result = make_result()
        clone = ExperimentResult.from_json(result.to_json())
        assert clone.to_dict() == result.to_dict()
        assert clone.sections == result.sections

    def test_nan_metrics_survive_round_trip(self):
        result = make_result(
            summaries={"bcbpt": {"mean_detection_time_s": float("nan")}}
        )
        clone = ExperimentResult.from_json(result.to_json())
        assert math.isnan(clone.summaries["bcbpt"]["mean_detection_time_s"])

    def test_newer_schema_rejected(self):
        data = make_result().to_dict()
        data["schema_version"] = 999
        with pytest.raises(ValueError, match="newer"):
            ExperimentResult.from_dict(data)

    def test_render_includes_sections_and_verdicts(self):
        text = make_result().render()
        assert "Delay summary" in text
        assert "paper_ordering: PASS" in text


class TestDiff:
    def test_identical_runs(self):
        diff = diff_results(make_result(), make_result())
        assert diff.identical
        assert "identical" in diff.render()

    def test_nan_equal_nan_in_diff(self):
        a = make_result(summaries={"x": {"m": float("nan")}})
        b = make_result(summaries={"x": {"m": float("nan")}})
        assert diff_results(a, b).identical

    def test_config_metric_and_verdict_changes_reported(self):
        baseline = make_result()
        candidate = make_result(
            config={"node_count": 80, "seeds": [5], "workers": 1},
            summaries={
                "bitcoin": {"mean_s": 0.20, "variance_s2": 8e-3, "count": 15},
                "lbc": {"mean_s": 0.03},
            },
            verdicts={"paper_ordering": False},
        )
        diff = diff_results(baseline, candidate)
        assert not diff.identical
        assert diff.config_changes["node_count"] == (40, 80)
        assert diff.metric_deltas["bitcoin"]["mean_s"] == (0.18, 0.20)
        assert diff.labels_only_in_baseline == ["bcbpt"]
        assert diff.labels_only_in_candidate == ["lbc"]
        assert diff.verdict_changes["paper_ordering"] == (True, False)
        text = diff.render()
        assert "node_count" in text and "paper_ordering" in text

    def test_cross_experiment_diff_rejected(self):
        with pytest.raises(ValueError, match="different experiments"):
            diff_results(make_result(), make_result(experiment="fig4"))


class TestResultStore:
    def test_save_creates_run_directory_with_report(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        run_dir = store.save(make_result())
        assert (run_dir / "result.json").is_file()
        assert (run_dir / "report.txt").is_file()
        assert json.loads((run_dir / "result.json").read_text())["experiment"] == "fig3"

    def test_save_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        result = make_result()
        run_dir = store.save(result)
        assert store.load(run_dir).to_dict() == result.to_dict()

    def test_run_ids_and_latest(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        first = store.save(make_result())
        second = store.save(make_result())
        ids = store.run_ids("fig3")
        assert len(ids) == 2
        assert ids[0].endswith(first.name) and ids[1].endswith(second.name)
        assert store.latest("fig3") == ids[-1]
        assert store.latest("fig3", before=ids[-1]) == ids[0]
        assert store.latest("fig4") is None

    def test_same_second_runs_get_distinct_directories(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        a = store.save(make_result())
        b = store.save(make_result())
        assert a != b

    def test_load_by_run_id_and_missing_run_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        run_dir = store.save(make_result())
        run_id = f"fig3/{run_dir.name}"
        assert store.load(run_id).experiment == "fig3"
        with pytest.raises(FileNotFoundError):
            store.load("fig3/20000101T000000-001")

    def test_store_level_diff(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        store.save(make_result())
        store.save(make_result(verdicts={"paper_ordering": False}))
        ids = store.run_ids("fig3")
        diff = store.diff(ids[0], ids[1])
        assert diff.verdict_changes["paper_ordering"] == (True, False)
        assert diff.baseline == ids[0]

    def test_empty_store_lists_nothing(self, tmp_path):
        assert ResultStore(tmp_path / "nowhere").run_ids() == []
