"""Adversary-plane experiment tests: grid invariance, envelopes, goldens.

The satellites of the adversary-plane PR, in one place:

* **Worker-count invariance** of the dynamic (attack × protocol × seed)
  grid, here on the *eclipse* and *selfish* cells — the churn-composed and
  block-withholding code paths.  The plain byzantine cell's invariance is
  pinned by ``test_api_registry.TestNewlyParallelJobs``.
* **Envelope round trip** — an attacks run survives
  ``ExperimentResult.from_json(result.to_json())`` untouched, which requires
  that no NaN ever reaches the summaries (unmeasured quantities are simply
  omitted).
* **Deterministic victim selection** — ``_pick_victim`` is a pure function
  of the built topology, so eclipse cells aim at the same node on every
  rebuild of the same seed.
* **The named-stream contract** — with no adversary installed the fig3
  protocol comparison still reproduces the pre-adversary golden sample
  digests byte-for-byte: the behaviour filter in
  ``P2PNetwork._send_prechecked`` takes zero extra RNG draws when the
  behaviour table is empty.
"""

from __future__ import annotations

import hashlib
import math

import pytest

from repro.experiments.api import run_experiment
from repro.experiments.attacks import (
    _pick_victim,
    coverage_loss,
    degradation_ratio,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import run_protocol_comparison
from repro.workloads.network_gen import NetworkParameters
from repro.workloads.scenarios import build_scenario
from tests.experiments.test_relay_experiment import (
    GOLDEN_CONFIG,
    GOLDEN_FIG3_DIGESTS,
)

CFG = ExperimentConfig(
    node_count=40, runs=1, seeds=(5, 11), measuring_nodes=1, run_timeout_s=30.0
)

#: The composed cells: eclipse rides on churn, selfish wires the withholding
#: miner — together they cover every adversary code path the plain byzantine
#: cell does not.
OPTIONS = {
    "attacks": ("eclipse", "selfish"),
    "protocols": ("bitcoin", "bcbpt"),
    "attack_blocks": 1,
    "attack_txs": 2,
}


@pytest.fixture(scope="module")
def attacks_result():
    """One serial attacks run shared by the whole module."""
    return run_experiment("attacks", CFG.with_overrides(workers=1), dict(OPTIONS))


class TestDynamicGrid:
    def test_grid_covers_requested_cells(self, attacks_result):
        dynamic = attacks_result.payload.dynamic
        assert set(dynamic) == {
            f"{attack}/{protocol}"
            for attack in ("none", "eclipse", "selfish")
            for protocol in ("bitcoin", "bcbpt")
        }
        for key, cell in dynamic.items():
            assert cell.label == key
            assert cell.blocks_measured >= 0
            assert len(cell.per_seed) == len(CFG.seeds)
            assert [seed for seed, _ in cell.per_seed] == list(CFG.seeds)

    def test_worker_invariance_of_composed_cells(self, attacks_result):
        """Two pool workers must merge to the exact serial payload —
        including the churn-composed eclipse cells and the selfish miner's
        Optional revenue shares (None, never NaN, for unmeasured seeds)."""
        parallel = run_experiment(
            "attacks", CFG.with_overrides(workers=2), dict(OPTIONS)
        )
        assert parallel.payload == attacks_result.payload

    def test_baseline_cells_are_honest(self, attacks_result):
        dynamic = attacks_result.payload.dynamic
        for protocol in ("bitcoin", "bcbpt"):
            baseline = dynamic[f"none/{protocol}"]
            assert baseline.messages_suppressed == 0
            assert baseline.blocks_withheld == 0
            assert baseline.byzantine_counts == (0,) * len(CFG.seeds)

    def test_eclipse_cells_compose_churn_and_selective_relay(self, attacks_result):
        dynamic = attacks_result.payload.dynamic
        for protocol in ("bitcoin", "bcbpt"):
            cell = dynamic[f"eclipse/{protocol}"]
            assert all(count > 0 for count in cell.byzantine_counts)
            assert cell.victim_coverages, "the victim's view must be measured"
            assert all(0.0 <= v <= 1.0 for v in cell.victim_coverages)
            assert not math.isnan(coverage_loss(dynamic, "eclipse", protocol))

    def test_selfish_cells_track_revenue_against_hashpower(self, attacks_result):
        dynamic = attacks_result.payload.dynamic
        for protocol in ("bitcoin", "bcbpt"):
            cell = dynamic[f"selfish/{protocol}"]
            assert cell.attacker_hashpower == pytest.approx(0.35)
            assert len(cell.revenue_shares) == len(CFG.seeds)
            for share in cell.revenue_shares:
                # None marks a seed whose chain held no mined blocks; a
                # measured share is a real fraction — never NaN, which would
                # break payload equality across the process pool.
                assert share is None or 0.0 <= share <= 1.0
            # The selfish bookkeeping is wired even when the attacker never
            # wins a block at this tiny scale.
            assert cell.blocks_withheld >= cell.blocks_released >= 0

    def test_degradation_is_measured_against_own_baseline(self, attacks_result):
        dynamic = attacks_result.payload.dynamic
        for protocol in ("bitcoin", "bcbpt"):
            ratio = degradation_ratio(dynamic, "eclipse", protocol)
            if not math.isnan(ratio):
                assert ratio > 0.0
        # An attack kind that never ran yields NaN, not a KeyError.
        assert math.isnan(degradation_ratio(dynamic, "delay", "bitcoin"))


class TestEnvelope:
    def test_round_trip_is_lossless(self, attacks_result):
        clone = ExperimentResult.from_json(attacks_result.to_json())
        assert clone.to_dict() == attacks_result.to_dict()

    def test_summaries_never_carry_nan(self, attacks_result):
        """NaN survives Python's json encoder but poisons envelope equality;
        unmeasured quantities must be omitted from summaries instead."""

        def walk(value):
            if isinstance(value, float):
                assert not math.isnan(value)
            elif isinstance(value, dict):
                for item in value.values():
                    walk(item)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    walk(item)

        walk(attacks_result.summaries)

    def test_verdicts_are_booleans(self, attacks_result):
        for name in (
            "clustering_contains_byzantine_degradation",
            "representative_capture_widens_surface",
            "clustering_widens_eclipse_surface",
            "delay_injection_degrades_propagation",
            "selfish_mining_pays_somewhere",
        ):
            assert isinstance(attacks_result.verdicts[name], bool)

    def test_samples_carry_per_seed_block_delays(self, attacks_result):
        labels = {series["label"] for series in attacks_result.samples["series"]}
        assert any(label.startswith("none/") for label in labels)
        assert any(label.startswith("eclipse/") for label in labels)


class TestVictimSelection:
    def _scenario(self, seed=5):
        return build_scenario(
            "bcbpt",
            NetworkParameters(node_count=40, seed=seed),
            latency_threshold_s=0.05,
        )

    def test_pick_victim_is_deterministic_across_rebuilds(self):
        first = _pick_victim(self._scenario())
        second = _pick_victim(self._scenario())
        assert first == second

    def test_pick_victim_targets_the_most_common_region(self):
        scenario = self._scenario()
        simulated = scenario.network
        victim = _pick_victim(scenario)
        by_region: dict[str, list[int]] = {}
        for node_id in simulated.node_ids():
            region = simulated.node(node_id).position.region
            by_region.setdefault(region, []).append(node_id)
        victim_region = simulated.node(victim).position.region
        assert len(by_region[victim_region]) == max(len(v) for v in by_region.values())
        assert victim == min(by_region[victim_region])


def _digest(samples) -> str:
    return hashlib.sha256(",".join(repr(s) for s in samples).encode()).hexdigest()


class TestAdversaryOffGoldens:
    """Regression for the adversary plane's zero-cost-when-off guarantee."""

    def test_fig3_golden_digests_survive_the_adversary_plane(self):
        """With no behaviour installed, the filter hook in
        ``_send_prechecked`` must take zero extra draws and zero scheduling
        decisions: the pre-adversary fig3 sample digests reproduce
        byte-for-byte.  (Same goldens as test_relay_experiment — asserted
        here again so a regression in the adversary plumbing points at this
        PR, not at the relay strategies.)"""
        results = run_protocol_comparison(
            ("bitcoin", "lbc", "bcbpt"), GOLDEN_CONFIG
        )
        for name, expected in GOLDEN_FIG3_DIGESTS.items():
            assert _digest(results[name].delays.samples) == expected, (
                f"{name}: adversary-off run diverged from the golden fingerprint"
            )
