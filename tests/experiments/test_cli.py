"""Smoke tests for the unified experiment CLI (`python -m repro.experiments`).

Every registered experiment is exercised end-to-end at tiny scale through the
same entry point the shell uses (`cli.main`), including result-store
persistence, the sweep grid, `compare`, and the deprecated per-module shims.
"""

import warnings

import pytest

from repro.experiments.api import experiment_names
from repro.experiments.cli import main
from repro.experiments.results import ResultStore

#: Tiny-scale arguments per experiment: every registered name must appear
#: here so a newly added experiment without a smoke test fails loudly.
TINY_ARGS = {
    "fig3": ["--nodes", "20", "--runs", "1", "--seeds", "3", "--measuring-nodes", "1"],
    "fig4": [
        "--nodes", "20", "--runs", "1", "--seeds", "3", "--measuring-nodes", "1",
        "--thresholds-ms", "30", "60",
    ],
    "threshold_sweep": [
        "--nodes", "20", "--runs", "1", "--seeds", "3", "--measuring-nodes", "1",
        "--thresholds-ms", "25", "50",
    ],
    "overhead": [
        "--nodes", "20", "--runs", "1", "--seeds", "3", "--measuring-nodes", "1",
    ],
    "attacks": [
        "--nodes", "40", "--runs", "1", "--seeds", "3", "--measuring-nodes", "1",
        "--attacks", "byzantine", "selfish", "--protocols", "bitcoin", "bcbpt",
        "--attack-blocks", "1", "--attack-txs", "2",
    ],
    "doublespend": [
        "--nodes", "40", "--runs", "1", "--seeds", "3", "--measuring-nodes", "1",
        "--races", "1", "--horizon", "0.5",
    ],
    "ablation": ["--nodes", "20", "--runs", "1", "--seeds", "3", "--measuring-nodes", "1"],
    "churn_resilience": [
        "--nodes", "40", "--runs", "1", "--seeds", "3", "--measuring-nodes", "1",
        "--levels", "static", "heavy",
    ],
    "relay_comparison": [
        "--nodes", "20", "--runs", "1", "--seeds", "3", "--measuring-nodes", "1",
        "--relays", "flood", "compact", "adaptive", "headers",
        "--protocols", "bitcoin", "bcbpt",
        "--blocks", "1", "--txs-per-block", "2",
    ],
    "load_frontier": [
        "--nodes", "12", "--runs", "1", "--seeds", "3", "--measuring-nodes", "1",
        "--rates", "1", "4", "--horizon", "60", "--block-interval", "4",
        "--depth", "2", "--funding-outputs", "4",
    ],
    "scale": [
        "--nodes", "30", "--runs", "1", "--seeds", "3", "--measuring-nodes", "1",
        "--node-counts", "20", "30", "--protocols", "bitcoin", "--cell-runs", "1",
    ],
    "validation": [
        "--nodes", "40", "--runs", "2", "--seeds", "3", "--measuring-nodes", "1",
        "--crawler-samples", "500",
    ],
}


def test_every_registered_experiment_has_a_smoke_entry():
    assert sorted(TINY_ARGS) == sorted(experiment_names())


def test_list_shows_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in experiment_names():
        assert name in out


def test_describe_every_experiment(capsys):
    for name in experiment_names():
        assert main(["describe", name]) == 0
        assert name in capsys.readouterr().out


def test_unknown_experiment_fails_cleanly(capsys):
    assert main(["describe", "fig5"]) == 2
    assert main(["run", "fig5"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


@pytest.mark.parametrize("name", sorted(TINY_ARGS))
def test_run_smoke_with_persistence(name, tmp_path, capsys):
    """`run <name>` at tiny scale: exit 0, report printed, envelope stored."""
    store_dir = tmp_path / "results"
    rc = main(["run", name, *TINY_ARGS[name], "--results-dir", str(store_dir)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "saved:" in out
    store = ResultStore(store_dir)
    ids = store.run_ids(name)
    assert len(ids) == 1
    loaded = store.load(ids[0])
    assert loaded.experiment == name
    assert loaded.seeds == [3]
    assert loaded.sections


def test_run_no_save_writes_nothing(tmp_path, capsys):
    store_dir = tmp_path / "results"
    rc = main(
        ["run", "fig3", *TINY_ARGS["fig3"], "--no-save", "--results-dir", str(store_dir)]
    )
    assert rc == 0
    assert "saved:" not in capsys.readouterr().out
    assert not store_dir.exists()


def test_sweep_produces_one_stored_run_per_point(tmp_path, capsys):
    store_dir = tmp_path / "results"
    rc = main(
        [
            "run", "fig3", *TINY_ARGS["fig3"],
            "--results-dir", str(store_dir),
            "--sweep", "max_outbound=4,8",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "sweep point: max_outbound=4" in out
    assert "Sweep summary" in out
    ids = ResultStore(store_dir).run_ids("fig3")
    assert len(ids) == 2
    outbounds = {ResultStore(store_dir).load(i).config["max_outbound"] for i in ids}
    assert outbounds == {4, 8}


def test_sweep_over_list_valued_option_and_config_field(tmp_path, capsys):
    """Each sweep point carries one scalar; list-valued targets (an option
    with nargs, a sequence config field like seeds) must receive it wrapped,
    not exploded (regression: `--sweep thresholds_ms=30,50` crashed and
    `--sweep protocols=...` split the name into characters)."""
    store_dir = tmp_path / "results"
    rc = main(
        [
            "run", "fig4", *TINY_ARGS["fig3"],
            "--results-dir", str(store_dir),
            "--sweep", "thresholds_ms=30,60",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "sweep point: thresholds_ms=30" in out
    store = ResultStore(store_dir)
    thresholds = {
        tuple(store.load(i).config["fig4_thresholds_s"]) for i in store.run_ids("fig4")
    }
    assert thresholds == {(0.030,), (0.060,)}

    rc = main(
        ["run", "fig3", *TINY_ARGS["fig3"][2:], "--nodes", "20",
         "--results-dir", str(store_dir), "--sweep", "seeds=3,11"]
    )
    assert rc == 0
    seeds = {tuple(store.load(i).seeds) for i in store.run_ids("fig3")}
    assert seeds == {(3,), (11,)}


def test_sweep_rejects_unknown_field(tmp_path):
    with pytest.raises(SystemExit):
        main(["run", "fig3", *TINY_ARGS["fig3"], "--no-save", "--sweep", "bogus=1,2"])


def test_compare_identical_runs(tmp_path, capsys):
    store_dir = tmp_path / "results"
    for _ in range(2):
        assert main(["run", "fig3", *TINY_ARGS["fig3"], "--results-dir", str(store_dir)]) == 0
    rc = main(["compare", "fig3", "--results-dir", str(store_dir)])
    assert rc == 0
    assert "identical" in capsys.readouterr().out


def test_compare_detects_config_drift(tmp_path, capsys):
    store_dir = tmp_path / "results"
    assert main(["run", "fig3", *TINY_ARGS["fig3"], "--results-dir", str(store_dir)]) == 0
    assert (
        main(
            ["run", "fig3", *TINY_ARGS["fig3"][2:], "--nodes", "25",
             "--results-dir", str(store_dir)]
        )
        == 0
    )
    rc = main(["compare", "fig3", "--results-dir", str(store_dir)])
    assert rc == 1
    assert "config node_count" in capsys.readouterr().out


def test_compare_needs_two_runs(tmp_path, capsys):
    rc = main(["compare", "fig3", "--results-dir", str(tmp_path / "results")])
    assert rc == 2
    assert "two stored runs" in capsys.readouterr().err


def test_diff_latest_flag(tmp_path, capsys):
    store_dir = tmp_path / "results"
    args = ["run", "fig3", *TINY_ARGS["fig3"], "--results-dir", str(store_dir)]
    assert main(args) == 0
    assert main([*args, "--diff-latest"]) == 0
    assert "identical" in capsys.readouterr().out


def test_diff_latest_with_default_relative_root(tmp_path, monkeypatch, capsys):
    """Regression: with the default relative `results/` root, the saved run
    directory must not be double-prefixed when diffed against."""
    monkeypatch.chdir(tmp_path)
    args = ["run", "fig3", *TINY_ARGS["fig3"]]
    assert main(args) == 0
    assert main([*args, "--diff-latest"]) == 0
    out = capsys.readouterr().out
    assert "identical" in out
    assert (tmp_path / "results" / "fig3").is_dir()


def test_diff_latest_works_with_no_save(tmp_path, capsys):
    """Regression: --no-save --diff-latest still diffs the (unsaved) run
    against the newest stored one instead of silently doing nothing."""
    store_dir = tmp_path / "results"
    args = ["run", "fig3", *TINY_ARGS["fig3"], "--results-dir", str(store_dir)]
    assert main(args) == 0
    assert main([*args, "--no-save", "--diff-latest"]) == 0
    out = capsys.readouterr().out
    assert "(unsaved run)" in out
    assert "identical" in out
    assert len(ResultStore(store_dir).run_ids("fig3")) == 1


def test_deprecated_module_entry_points_warn_and_forward(tmp_path, capsys):
    """The nine legacy `python -m repro.experiments.<name>` mains still work,
    emitting a DeprecationWarning and reusing the unified flag set."""
    from repro.experiments import fig3 as fig3_module

    with pytest.warns(DeprecationWarning, match="deprecated"):
        rc = fig3_module.main(
            [*TINY_ARGS["fig3"], "--results-dir", str(tmp_path / "results")]
        )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fig. 3" in out
    assert ResultStore(tmp_path / "results").run_ids("fig3")


def test_all_legacy_mains_are_shims():
    """Every driver module's main() forwards to the unified CLI (no module
    keeps a private argparse copy)."""
    import importlib
    import inspect

    from repro.experiments.api import DRIVER_MODULES

    for module_name in DRIVER_MODULES:
        module = importlib.import_module(module_name)
        source = inspect.getsource(module.main)
        assert "deprecated_main" in source, f"{module_name}.main is not a shim"
        assert "argparse" not in source, f"{module_name}.main still parses argv itself"
