"""Tests for the relay-comparison experiment and the FloodRelay equivalence.

The golden fingerprints below were captured from the pre-strategy code (the
relay plane hardcoded in ``BitcoinNode``) on the exact configuration used
here.  They prove the extraction is behaviour-preserving: the default
``flood`` strategy must keep reproducing the Fig. 3 Δt sample streams
byte-for-byte, for the serial path and under parallel fan-out alike.
"""

import hashlib

import pytest

from repro.experiments.api import get_experiment, run_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.relay_comparison import (
    RELAY_PROTOCOLS,
    RELAY_SWEEP,
    adaptive_narrows_clustering_advantage,
    build_report,
    clustering_beats_vanilla_under_adaptive,
    compact_beats_flood,
    run_relay_comparison,
)
from repro.experiments.runner import run_protocol_comparison

#: sha256 over the comma-joined ``repr`` of every pooled Δt sample, captured
#: on commit b5f48fd (pre-RelayStrategy) with the GOLDEN_CONFIG below.
GOLDEN_FIG3_DIGESTS = {
    "bitcoin": "aedb16d62d7617f67751084501cbfd74632d9e5af8322caa365f0c40621a8286",
    "lbc": "c0657cee0303a0131d49594e28b761be79e7a13d7a6ae9438f445d9861b34f9b",
    "bcbpt": "781bbeb05fd4a1ec98ea0523a55221543af690ff5ca7f2ad367a8142060cfb57",
}

GOLDEN_CONFIG = ExperimentConfig(
    node_count=40, runs=2, seeds=(5,), measuring_nodes=2, run_timeout_s=30.0
)

SMALL = ExperimentConfig(
    node_count=30, runs=1, seeds=(3,), measuring_nodes=1, run_timeout_s=30.0
)


def _digest(samples) -> str:
    return hashlib.sha256(",".join(repr(s) for s in samples).encode()).hexdigest()


class TestFloodEquivalence:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_default_relay_reproduces_pre_strategy_fig3_exactly(self, workers):
        results = run_protocol_comparison(
            ("bitcoin", "lbc", "bcbpt"), GOLDEN_CONFIG.with_overrides(workers=workers)
        )
        for name, expected in GOLDEN_FIG3_DIGESTS.items():
            assert _digest(results[name].delays.samples) == expected, (
                f"{name} (workers={workers}) diverged from the pre-strategy baseline"
            )


class TestRelayComparisonExperiment:
    def test_registered_with_spec(self):
        spec = get_experiment("relay_comparison")
        assert spec.experiment_id == "Ext-7"
        assert spec.exit_verdict == "compact_fewer_messages_per_block"
        assert {o.dest for o in spec.options} >= {"relays", "protocols", "blocks"}

    def test_runs_and_reports(self):
        results = run_relay_comparison(
            SMALL, relays=("flood", "compact"), protocols=("bitcoin",), blocks=1,
            txs_per_block=3,
        )
        assert set(results) == {"flood/bitcoin", "compact/bitcoin"}
        for result in results.values():
            assert result.blocks_measured == 1
            assert result.mean_coverage() == 1.0
            assert len(result.delays) == SMALL.node_count - 1
        assert (
            results["compact/bitcoin"].messages_per_block()
            < results["flood/bitcoin"].messages_per_block()
        )
        report = build_report(results)
        text = report.render()
        assert "Ext-7" in text
        assert "msgs/block" in text

    def test_worker_count_invariance(self):
        kwargs = dict(relays=("flood", "compact"), protocols=("bitcoin",), blocks=1,
                      txs_per_block=2)
        serial = run_relay_comparison(SMALL.with_overrides(workers=1), **kwargs)
        parallel = run_relay_comparison(SMALL.with_overrides(workers=2), **kwargs)
        for key in serial:
            assert serial[key].delays.samples == parallel[key].delays.samples
            assert serial[key].relay_messages == parallel[key].relay_messages
            assert serial[key].relay_bytes == parallel[key].relay_bytes

    def test_envelope_and_verdicts(self):
        run = run_experiment(
            "relay_comparison",
            SMALL,
            {"relays": ("flood", "compact"), "protocols": ("bitcoin",), "blocks": 1,
             "txs_per_block": 3},
        )
        assert run.verdicts["compact_fewer_messages_per_block"]
        assert "compact/bitcoin" in run.summaries
        assert run.summaries["compact/bitcoin"]["messages_per_block"] > 0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="unknown relay strategy"):
            run_relay_comparison(SMALL, relays=("gossip",))
        with pytest.raises(ValueError, match="blocks"):
            run_relay_comparison(SMALL, blocks=0)
        with pytest.raises(ValueError, match="block_horizon_s"):
            run_relay_comparison(SMALL, block_horizon_s=0.0)
        with pytest.raises(ValueError, match="unknown policy"):
            run_relay_comparison(SMALL, protocols=("bitcion",))

    def test_default_sweep_constants(self):
        assert RELAY_SWEEP == ("flood", "compact", "push", "adaptive", "headers")
        assert RELAY_PROTOCOLS == ("bitcoin", "lbc", "bcbpt")

    def test_compact_beats_flood_requires_a_pair(self):
        assert not compact_beats_flood({}, lambda r: 0)

    def test_adaptive_verdicts_require_their_cells(self):
        assert not clustering_beats_vanilla_under_adaptive({})
        assert not adaptive_narrows_clustering_advantage({})

    def test_full_sweep_with_adaptive_and_headers(self):
        """The enlarged grid: all five strategies cross one policy, every
        strategy reaches the whole network, and the strategy-specific
        counters show each mechanism actually ran."""
        results = run_relay_comparison(
            SMALL,
            relays=RELAY_SWEEP,
            protocols=("bitcoin",),
            blocks=1,
            txs_per_block=3,
        )
        assert set(results) == {f"{relay}/bitcoin" for relay in RELAY_SWEEP}
        for result in results.values():
            assert result.mean_coverage() == 1.0
            assert len(result.delays) == SMALL.node_count - 1
        headers = results["headers/bitcoin"]
        assert headers.message_breakdown["headers"] > 0
        assert headers.header_bodies_requested > 0
        adaptive = results["adaptive/bitcoin"]
        assert adaptive.summary()["mean_final_fanout"] > 0
        report = build_report(results).render()
        assert "Adaptive fan-out" in report
        assert "Headers-first sync" in report

    def test_adaptive_verdict_cells(self):
        results = run_relay_comparison(
            SMALL,
            relays=("flood", "adaptive"),
            protocols=("bitcoin", "bcbpt"),
            blocks=1,
            txs_per_block=2,
        )
        # The verdicts are data-dependent booleans; what the test pins down
        # is that all four cells exist so the comparison is real, and the
        # functions run without error on genuine results.
        assert set(results) == {
            "flood/bitcoin", "flood/bcbpt", "adaptive/bitcoin", "adaptive/bcbpt",
        }
        assert clustering_beats_vanilla_under_adaptive(results) in (True, False)
        assert adaptive_narrows_clustering_advantage(results) in (True, False)

    @pytest.mark.parametrize("relay", ["adaptive", "headers"])
    def test_worker_count_invariance_new_strategies(self, relay):
        kwargs = dict(relays=(relay,), protocols=("bitcoin",), blocks=1,
                      txs_per_block=2)
        serial = run_relay_comparison(SMALL.with_overrides(workers=1), **kwargs)
        parallel = run_relay_comparison(SMALL.with_overrides(workers=2), **kwargs)
        for key in serial:
            assert serial[key].delays.samples == parallel[key].delays.samples
            assert serial[key].relay_messages == parallel[key].relay_messages
            assert serial[key].relay_bytes == parallel[key].relay_bytes
            assert serial[key].fanout_samples == parallel[key].fanout_samples
            assert serial[key].getheaders_sent == parallel[key].getheaders_sent
