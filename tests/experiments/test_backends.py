"""Unit tests for the executor backends and the cell checkpoint layer.

The contracts under test: backends preserve submission order and stream
``on_result`` callbacks in that order; cell keys hash the physics of a cell
and ignore execution-plane knobs; the cell store round-trips results
atomically (including through extra read-only roots); and the execution plan
partitions a grid into shard slices, budgets, cache hits and loud MISSING
placeholders without ever changing a produced value.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.backends import (
    MISSING,
    ExecutionPlan,
    GridIncomplete,
    InlineBackend,
    PoolBackend,
    adaptive_chunksize,
    make_backend,
    resolve_workers,
)
from repro.experiments.checkpoint import (
    CellStore,
    canonical_job,
    cell_key,
    missing_keys,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import ParallelRunner, PropagationJob


def _double(value: int) -> int:
    return value * 2


class TestInlineBackend:
    def test_preserves_submission_order(self):
        assert InlineBackend().run(_double, list(range(10))) == [2 * i for i in range(10)]

    def test_streams_results_in_order(self):
        emitted = []
        InlineBackend().run(_double, [5, 6, 7], lambda i, r: emitted.append((i, r)))
        assert emitted == [(0, 10), (1, 12), (2, 14)]


class TestPoolBackend:
    def test_preserves_submission_order(self):
        assert PoolBackend(workers=4).run(_double, list(range(25))) == [
            2 * i for i in range(25)
        ]

    def test_streams_results_in_submission_order(self):
        emitted = []
        results = PoolBackend(workers=4, chunksize=2).run(
            _double, list(range(21)), lambda i, r: emitted.append((i, r))
        )
        # on_result must fire for every cell, strictly in submission order,
        # regardless of which worker finished first.
        assert emitted == [(i, 2 * i) for i in range(21)]
        assert results == [2 * i for i in range(21)]

    def test_empty_jobs(self):
        assert PoolBackend(workers=4).run(_double, []) == []

    def test_single_worker_falls_back_inline(self):
        # A non-picklable closure only survives the inline path.
        captured = []
        results = PoolBackend(workers=1).run(lambda v: captured.append(v) or v, [1, 2])
        assert results == [1, 2]
        assert captured == [1, 2]

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            PoolBackend(workers=-2)


class TestParallelRunnerStreaming:
    def test_map_jobs_streams_on_result(self):
        emitted = []
        runner = ParallelRunner(workers=4)
        results = runner.map_jobs(
            _double, list(range(12)), on_result=lambda i, r: emitted.append((i, r))
        )
        assert results == [2 * i for i in range(12)]
        assert emitted == [(i, 2 * i) for i in range(12)]

    def test_serial_map_jobs_streams_on_result(self):
        emitted = []
        ParallelRunner(workers=1).map_jobs(
            _double, [3, 4], on_result=lambda i, r: emitted.append((i, r))
        )
        assert emitted == [(0, 6), (1, 8)]


class TestBackendFactory:
    def test_auto_picks_by_worker_count(self):
        assert make_backend("auto", 1).name == "inline"
        assert make_backend("auto", 4).name == "pool"

    def test_explicit_names(self):
        assert make_backend("inline", 8).name == "inline"
        assert make_backend("pool", 8).name == "pool"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("cloud", 4)

    def test_adaptive_chunksize(self):
        assert adaptive_chunksize(8, 4) == 1  # fewer jobs than target chunks
        assert adaptive_chunksize(320, 4) == 20  # 4 workers * 4 chunks each
        assert adaptive_chunksize(0, 4) == 1

    def test_resolve_workers(self):
        assert resolve_workers(8, 3) == 3
        assert resolve_workers(0, 2) >= 1


def _propagation_job(**overrides) -> PropagationJob:
    fields = dict(
        label="bcbpt",
        policy_name="bcbpt",
        threshold_s=0.05,
        seed=3,
        config=ExperimentConfig(node_count=80, workers=1),
        snapshot_path=None,
    )
    fields.update(overrides)
    return PropagationJob(**fields)


class TestCellKey:
    def test_stable_across_processes(self):
        # The key is a pure content hash: recomputing it yields the same hex.
        job = _propagation_job()
        assert cell_key("fig3", job) == cell_key("fig3", job)

    def test_execution_knobs_do_not_change_the_key(self):
        base = _propagation_job()
        more_workers = _propagation_job(config=ExperimentConfig(node_count=80, workers=8))
        snapshotted = _propagation_job(snapshot_path="/tmp/some/where.pkl")
        assert cell_key("fig3", base) == cell_key("fig3", more_workers)
        assert cell_key("fig3", base) == cell_key("fig3", snapshotted)

    def test_physics_changes_the_key(self):
        base = _propagation_job()
        assert cell_key("fig3", base) != cell_key("fig3", _propagation_job(seed=11))
        assert cell_key("fig3", base) != cell_key(
            "fig3", _propagation_job(config=ExperimentConfig(node_count=200, workers=1))
        )
        assert cell_key("fig3", base) != cell_key("fig4", base)

    def test_canonical_job_strips_execution_fields(self):
        data = canonical_job(_propagation_job(snapshot_path="/tmp/x.pkl"))
        assert "snapshot_path" not in data
        assert "workers" not in data["config"]
        assert data["config"]["node_count"] == 80


class TestCellStore:
    def test_round_trip(self, tmp_path):
        store = CellStore(tmp_path / "cells-a")
        assert not store.has("k1")
        store.save("k1", {"delays": [1.0, 2.0]})
        assert store.has("k1")
        assert store.load("k1") == {"delays": [1.0, 2.0]}
        assert store.keys() == ["k1"]
        assert len(store) == 1

    def test_missing_key_raises(self, tmp_path):
        with pytest.raises(KeyError):
            CellStore(tmp_path).load("nope")

    def test_extra_roots_serve_reads(self, tmp_path):
        shard_a = CellStore(tmp_path / "a")
        shard_b = CellStore(tmp_path / "b")
        shard_a.save("k1", "from-a")
        shard_b.save("k2", "from-b")
        merged = CellStore(tmp_path / "a", extra_roots=[tmp_path / "b"])
        assert merged.has("k1") and merged.has("k2")
        assert merged.load("k2") == "from-b"
        assert merged.keys() == ["k1", "k2"]
        assert missing_keys(merged, ["k1", "k2", "k3"]) == ["k3"]

    def test_no_torn_cells_left_behind(self, tmp_path):
        # A failed save must not leave a partial cell file a reader could load.
        store = CellStore(tmp_path)

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("boom")

        with pytest.raises(Exception):
            store.save("k1", Unpicklable())
        assert not store.has("k1")
        cell_dir = tmp_path / CellStore.CELL_DIR
        assert not any(cell_dir.glob("*.pkl"))

    def test_manifest_round_trip(self, tmp_path):
        store = CellStore(tmp_path / "a", extra_roots=[tmp_path / "b"])
        CellStore(tmp_path / "b").write_manifest({"shard_index": 1})
        store.write_manifest({"shard_index": 0})
        manifests = store.read_manifests()
        assert [m["shard_index"] for m in manifests] == [0, 1]


class TestMissingSentinel:
    def test_attribute_access_fails_loudly(self):
        with pytest.raises(AttributeError, match="shard"):
            MISSING.delays

    def test_pickles_to_a_missing_cell(self):
        clone = pickle.loads(pickle.dumps(MISSING))
        with pytest.raises(AttributeError):
            clone.anything


CONFIG = ExperimentConfig(node_count=80, workers=1)


class TestExecutionPlanValidation:
    def test_shard_fields_must_pair(self, tmp_path):
        with pytest.raises(ValueError, match="together"):
            ExecutionPlan(shard_index=0)

    def test_shard_requires_store(self):
        with pytest.raises(ValueError, match="store"):
            ExecutionPlan(shard_index=0, shard_count=2)

    def test_shard_index_range(self, tmp_path):
        store = CellStore(tmp_path)
        with pytest.raises(ValueError, match="shard_index"):
            ExecutionPlan(shard_index=2, shard_count=2, store=store)

    def test_no_execute_requires_store(self):
        with pytest.raises(ValueError, match="execute"):
            ExecutionPlan(execute=False)

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ExecutionPlan(backend="cloud")


class TestExecutionPlanRunCells:
    def test_plain_plan_runs_everything(self):
        plan = ExecutionPlan()
        assert plan.run_cells(_double, [1, 2, 3], CONFIG) == [2, 4, 6]
        assert plan.progress() == {
            "cells_executed": 3,
            "cells_cached": 0,
            "cells_missing": 0,
            "cells_total": 3,
        }
        assert not plan.incomplete

    def test_checkpointed_cells_are_loaded_not_rerun(self, tmp_path):
        store = CellStore(tmp_path)
        first = ExecutionPlan(store=store, experiment="unit")
        first.run_cells(_double, [1, 2, 3], CONFIG)
        assert len(store) == 3

        second = ExecutionPlan(store=store, experiment="unit")
        assert second.run_cells(_double, [1, 2, 3], CONFIG) == [2, 4, 6]
        assert second.cells_cached == 3
        assert second.cells_executed == 0

    def test_max_cells_budget_marks_the_rest_missing(self, tmp_path):
        store = CellStore(tmp_path)
        plan = ExecutionPlan(store=store, experiment="unit", max_cells=2)
        results = plan.run_cells(_double, [1, 2, 3, 4], CONFIG)
        assert results[:2] == [2, 4]
        assert results[2] is MISSING and results[3] is MISSING
        assert plan.incomplete
        assert plan.progress()["cells_missing"] == 2
        assert len(plan.missing_cell_keys) == 2

    def test_budget_spans_grids(self, tmp_path):
        # max_cells is a per-invocation budget, not per-grid: the second grid
        # of a multi-grid driver sees what the first one left.
        plan = ExecutionPlan(store=CellStore(tmp_path), experiment="unit", max_cells=3)
        plan.run_cells(_double, [1, 2], CONFIG)
        results = plan.run_cells(_double, [3, 4], CONFIG)
        assert results == [6, MISSING]

    def test_shards_partition_the_grid(self, tmp_path):
        jobs = list(range(7))
        produced: dict[int, int] = {}
        for shard in range(3):
            store = CellStore(tmp_path / f"shard-{shard}")
            plan = ExecutionPlan(
                store=store, experiment="unit", shard_index=shard, shard_count=3
            )
            results = plan.run_cells(_double, jobs, CONFIG)
            for position, result in enumerate(results):
                if result is not MISSING:
                    assert position not in produced, "two shards ran one cell"
                    produced[position] = result
        # Every cell ran in exactly one shard, with the right value.
        assert produced == {i: 2 * i for i in range(7)}

    def test_shard_slice_uses_the_global_cell_index(self, tmp_path):
        # Across two grids of 3 cells, shard 0/2 takes global indexes 0,2,4.
        plan = ExecutionPlan(
            store=CellStore(tmp_path), experiment="unit", shard_index=0, shard_count=2
        )
        first = plan.run_cells(_double, [0, 1, 2], CONFIG)
        second = plan.run_cells(_double, [3, 4, 5], CONFIG)
        assert first == [0, MISSING, 4]
        assert second == [MISSING, 8, MISSING]

    def test_no_execute_serves_only_the_store(self, tmp_path):
        store = CellStore(tmp_path)
        ExecutionPlan(store=store, experiment="unit").run_cells(_double, [1, 2], CONFIG)
        merge = ExecutionPlan(store=store, experiment="unit", execute=False)
        assert merge.run_cells(_double, [1, 2], CONFIG) == [2, 4]
        assert merge.cells_cached == 2

        strict = ExecutionPlan(store=store, experiment="unit", execute=False)
        results = strict.run_cells(_double, [1, 2, 99], CONFIG)
        assert results[2] is MISSING
        assert strict.incomplete

    def test_grid_incomplete_message_carries_progress(self, tmp_path):
        plan = ExecutionPlan(store=CellStore(tmp_path), experiment="unit", max_cells=1)
        plan.run_cells(_double, [1, 2], CONFIG)
        message = str(GridIncomplete(plan))
        assert "1 cell(s) executed" in message
        assert "1 not produced" in message
