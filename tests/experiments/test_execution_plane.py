"""Integration tests for the sweep execution plane.

The headline guarantees, exercised end-to-end on a small fig3 sweep:

* **kill-and-resume** — a run interrupted after N cells and resumed against
  the same cell store produces an envelope whose canonical form (summaries
  AND raw samples) is byte-identical to an uninterrupted run, for both the
  serial and the pooled backend;
* **shard + merge** — two `repro shard run` slices merged with
  `repro shard merge` reassemble the exact single-machine envelope;
* **result-store robustness** — two processes saving simultaneously never
  collide on a run directory, and the sqlite provenance index answers
  `--where`-style parameter queries over everything stored.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.experiments import cli
from repro.experiments.api import run_experiment
from repro.experiments.backends import ExecutionPlan, GridIncomplete
from repro.experiments.checkpoint import CellStore
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import (
    ExperimentResult,
    ResultStore,
    parse_where,
    resolve_run_selector,
)

#: Small enough for CI, large enough that BCBPT measuring nodes keep
#: proximity connections (do not shrink below ~80 nodes).  Two seeds so the
#: per-seed raw-sample series exercise the submission-order merge.
SMALL = ExperimentConfig(
    node_count=80, runs=1, seeds=(3, 11), measuring_nodes=1, workers=1
)

#: fig3 grid size under SMALL: 3 protocols x 2 seeds.
TOTAL_CELLS = 6


@pytest.fixture(scope="module")
def baseline() -> ExperimentResult:
    """The uninterrupted single-machine reference envelope."""
    return run_experiment("fig3", SMALL)


def _canonical(result: ExperimentResult) -> str:
    text = result.canonical_json()
    # The canonical form must have masked every wall-clock field.
    assert '"duration_s"' not in text
    return text


class TestKillAndResume:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_interrupted_then_resumed_run_is_byte_identical(
        self, baseline, tmp_path, workers
    ):
        store = CellStore(tmp_path / f"cells-w{workers}")
        config = SMALL.with_overrides(workers=workers)

        # "Kill" the sweep after 2 of 6 cells: the budgeted plan checkpoints
        # what it completed and raises instead of producing an envelope.
        interrupted = ExecutionPlan(store=store, max_cells=2)
        with pytest.raises(GridIncomplete):
            run_experiment("fig3", config, plan=interrupted)
        assert interrupted.cells_executed == 2
        assert len(store) == 2

        # Resume against the same store: only the remaining cells execute,
        # and the merged envelope is canonically byte-identical to the
        # uninterrupted reference — including the raw per-seed samples.
        resumed_plan = ExecutionPlan(store=store)
        resumed = run_experiment("fig3", config, plan=resumed_plan)
        assert resumed_plan.cells_cached == 2
        assert resumed_plan.cells_executed == TOTAL_CELLS - 2
        assert _canonical(resumed) == _canonical(baseline)
        assert resumed.samples == baseline.samples
        assert resumed.fingerprint() == baseline.fingerprint()

    def test_full_cache_reruns_without_executing(self, baseline, tmp_path):
        store = CellStore(tmp_path / "cells")
        run_experiment("fig3", SMALL, plan=ExecutionPlan(store=store))
        replay_plan = ExecutionPlan(store=store, max_cells=0)
        replay = run_experiment("fig3", SMALL, plan=replay_plan)
        assert replay_plan.cells_executed == 0
        assert replay_plan.cells_cached == TOTAL_CELLS
        assert _canonical(replay) == _canonical(baseline)


class TestShardRunAndMerge:
    def test_two_shards_merge_byte_identically(self, baseline, tmp_path):
        stores = [CellStore(tmp_path / f"shard-{i}") for i in range(2)]
        for index, store in enumerate(stores):
            plan = ExecutionPlan(store=store, shard_index=index, shard_count=2)
            with pytest.raises(GridIncomplete):
                run_experiment("fig3", SMALL, plan=plan)
            assert plan.cells_executed == TOTAL_CELLS // 2

        merged_store = CellStore(stores[0].root, extra_roots=[stores[1].root])
        merge_plan = ExecutionPlan(store=merged_store, execute=False)
        merged = run_experiment("fig3", SMALL, plan=merge_plan)
        assert merge_plan.cells_executed == 0
        assert merge_plan.cells_cached == TOTAL_CELLS
        assert _canonical(merged) == _canonical(baseline)
        assert merged.samples == baseline.samples

    def test_merge_is_strict_about_missing_shards(self, tmp_path):
        half = CellStore(tmp_path / "only-shard-0")
        with pytest.raises(GridIncomplete):
            run_experiment(
                "fig3",
                SMALL,
                plan=ExecutionPlan(store=half, shard_index=0, shard_count=2),
            )
        with pytest.raises(GridIncomplete):
            run_experiment(
                "fig3", SMALL, plan=ExecutionPlan(store=half, execute=False)
            )


# ----------------------------------------------------------- store + index
def _make_result(**overrides) -> ExperimentResult:
    fields = dict(
        experiment="fig3",
        experiment_id="Fig. 3",
        title="test result",
        created_at=1_800_000_000.0,
        config={"node_count": 80, "seeds": [3, 11], "workers": 1},
        options={},
        seeds=[3, 11],
        summaries={
            "bitcoin": {"mean_s": 0.18, "count": 15},
            "bcbpt": {"mean_s": 0.02, "count": 6},
        },
        verdicts={"paper_ordering": True},
        sections=[("Delay summary", "protocol  mean")],
        extras={"duration_s": 1.5},
    )
    fields.update(overrides)
    return ExperimentResult(**fields)


def _race_save(root: str, barrier, sink) -> None:
    store = ResultStore(root)
    result = _make_result()
    barrier.wait()  # both processes call save() at the same instant
    sink.put(str(store.save(result)))


class TestResultStoreRace:
    def test_concurrent_saves_claim_distinct_run_dirs(self, tmp_path):
        # Both results carry the same created_at, so both processes compute
        # the same <stamp> prefix; the atomic mkdir claim must hand each a
        # distinct sequence number instead of letting one overwrite the other.
        context = multiprocessing.get_context()
        barrier = context.Barrier(2)
        sink = context.Queue()
        procs = [
            context.Process(target=_race_save, args=(str(tmp_path), barrier, sink))
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        dirs = {sink.get(timeout=60) for _ in procs}
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        assert len(dirs) == 2, "two savers claimed the same run directory"
        store = ResultStore(tmp_path)
        assert len(store.run_ids("fig3")) == 2
        for run_dir in dirs:
            assert store.load(run_dir).experiment == "fig3"


class TestResultIndexQueries:
    @pytest.fixture()
    def store(self, tmp_path) -> ResultStore:
        store = ResultStore(tmp_path)
        store.save(_make_result(config={"node_count": 80, "workers": 1}))
        store.save(
            _make_result(
                created_at=1_800_000_100.0,
                config={"node_count": 200, "workers": 4},
                summaries={"bcbpt@50ms": {"mean_s": 0.03}},
            )
        )
        store.save(
            _make_result(
                created_at=1_800_000_200.0,
                experiment="scale",
                config={"node_count": 10000, "workers": 0},
                summaries={"bcbpt": {"mean_s": 0.05}},
            )
        )
        return store

    def test_query_by_config_field_and_alias(self, store):
        assert len(store.query({"node_count": "200"})) == 1
        assert store.query({"nodes": "200"}) == store.query({"node_count": "200"})
        assert len(store.query({"nodes": "80"}, experiment="fig3")) == 1
        assert store.query({"nodes": "999"}) == []

    def test_query_by_protocol_label(self, store):
        # "bcbpt" matches both the plain label and the base of "bcbpt@50ms".
        assert len(store.query({"policy": "bcbpt"})) == 3
        assert len(store.query({"protocol": "bcbpt@50ms"})) == 1

    def test_conditions_intersect(self, store):
        assert len(store.query({"nodes": "10000", "policy": "bcbpt"})) == 1
        assert store.query({"nodes": "10000", "policy": "bitcoin"}) == []

    def test_query_by_seed(self, store):
        assert len(store.query({"seed": "11"}, experiment="fig3")) == 2

    def test_index_survives_out_of_band_writes(self, store):
        # Runs written by another process (no index entry) appear after the
        # lazy refresh; deleting the sqlite file entirely is also recoverable.
        (store.root / "index.sqlite").unlink()
        assert len(store.query({"policy": "bcbpt"})) == 3

    def test_resolve_run_selector(self, store):
        newest_bcbpt = store.query({"policy": "bcbpt"})[-1]
        assert resolve_run_selector(store, "?policy=bcbpt") == newest_bcbpt
        assert (
            resolve_run_selector(store, "fig3?nodes=200")
            == store.query({"nodes": "200"}, experiment="fig3")[-1]
        )
        # No "?": plain refs pass through untouched.
        assert resolve_run_selector(store, "fig3/whatever") == "fig3/whatever"
        with pytest.raises(FileNotFoundError):
            resolve_run_selector(store, "fig3?nodes=31337")

    def test_parse_where(self):
        assert parse_where("nodes=80,policy=bcbpt") == {
            "nodes": "80",
            "policy": "bcbpt",
        }
        with pytest.raises(ValueError):
            parse_where("nodes")
        with pytest.raises(ValueError):
            parse_where("")


class TestCanonicalForm:
    def test_masks_wall_clock_and_execution_fields(self):
        a = _make_result(created_at=1.0, extras={"duration_s": 9.9})
        b = _make_result(
            created_at=2.0,
            extras={"duration_s": 0.1},
            config={"node_count": 80, "seeds": [3, 11], "workers": 8},
        )
        assert a.canonical_json() == b.canonical_json()
        assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_the_physics(self):
        a = _make_result()
        b = _make_result(summaries={"bitcoin": {"mean_s": 0.99}})
        assert a.fingerprint() != b.fingerprint()


# ------------------------------------------------------------------ CLI glue
class TestCliExecutionPlane:
    def test_budget_exhaustion_exits_incomplete(self, tmp_path, capsys):
        # --max-cells 0 executes nothing, so this exercises the full
        # GridIncomplete CLI path without simulating a single cell.
        code = cli.main(
            [
                "run",
                "fig3",
                "--max-cells",
                "0",
                "--cells",
                str(tmp_path / "cells"),
                "--results-dir",
                str(tmp_path / "results"),
            ]
        )
        assert code == cli.EXIT_INCOMPLETE
        err = capsys.readouterr().err
        assert "sweep incomplete" in err
        assert "resume with" in err

    def test_shard_run_requires_cells(self, tmp_path, capsys):
        code = cli.main(["shard", "run", "fig3", "--shard", "0/2"])
        assert code == 2
        assert "--cells" in capsys.readouterr().err

    def test_shard_rejects_sweep(self, tmp_path, capsys):
        code = cli.main(
            [
                "shard",
                "run",
                "fig3",
                "--shard",
                "0/2",
                "--cells",
                str(tmp_path),
                "--sweep",
                "node_count=80,200",
            ]
        )
        assert code == 2
        assert "--sweep" in capsys.readouterr().err

    def test_bad_shard_spec(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(
                ["shard", "run", "fig3", "--shard", "2", "--cells", str(tmp_path)]
            )

    def test_shard_merge_strict_on_empty_store(self, tmp_path, capsys):
        code = cli.main(
            [
                "shard",
                "merge",
                "fig3",
                str(tmp_path / "empty-cells"),
                "--results-dir",
                str(tmp_path / "results"),
            ]
        )
        assert code == cli.EXIT_INCOMPLETE
        assert "strict" in capsys.readouterr().err

    def test_shard_usage_and_unknown_mode(self, capsys):
        assert cli.main(["shard"]) == 2
        assert cli.main(["shard", "--help"]) == 0
        assert "shard run" in capsys.readouterr().out
        assert cli.main(["shard", "teleport"]) == 2
        assert cli.main(["shard", "run", "not-an-experiment"]) == 2
