"""Tests for the declarative experiment registry and dispatch path."""

import dataclasses

import pytest

from repro.experiments.api import (
    DRIVER_MODULES,
    ExperimentOption,
    ExperimentSpec,
    experiment_names,
    get_experiment,
    register,
    resolve_options,
    run_experiment,
    validate_protocol_labels,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig3 import FIG3_PROTOCOLS
from repro.experiments.runner import run_protocol_comparison

#: Every experiment the paper/extension index defines, in display order.
EXPECTED_NAMES = [
    "fig3",
    "fig4",
    "threshold_sweep",
    "overhead",
    "attacks",
    "doublespend",
    "ablation",
    "churn_resilience",
    "relay_comparison",
    "load_frontier",
    "scale",
    "validation",
]

SMALL = ExperimentConfig(
    node_count=40, runs=2, seeds=(5,), measuring_nodes=2, run_timeout_s=30.0
)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert experiment_names() == EXPECTED_NAMES
        assert len(EXPECTED_NAMES) == len(DRIVER_MODULES)

    def test_list_and_describe_agree_with_specs(self):
        """The round-trip the CLI exposes: every listed name resolves to a
        spec whose describe() carries its own name, id and title."""
        for name in experiment_names():
            spec = get_experiment(name)
            assert spec.name == name
            text = spec.describe()
            assert name in text
            assert spec.experiment_id in text
            assert spec.title in text
            for option in spec.options:
                assert option.flag in text

    def test_spec_attached_to_run_function(self):
        from repro.experiments.fig3 import run_fig3

        assert run_fig3.spec is get_experiment("fig3")

    def test_unknown_experiment_rejected_with_known_names(self):
        with pytest.raises(KeyError, match="fig3"):
            get_experiment("fig5")

    def test_duplicate_registration_from_other_source_rejected(self):
        spec = get_experiment("fig3")
        def imposter(config=None):  # a different implementation, same name
            return None
        with pytest.raises(ValueError, match="already registered"):
            register(dataclasses.replace(spec, run=imposter))
        # The original spec must be untouched by the failed attempt.
        assert get_experiment("fig3") is spec


class TestOptionResolution:
    SPEC = ExperimentSpec(
        name="_opts",
        experiment_id="T-1",
        title="option resolution fixture",
        description="",
        run=lambda config, **kwargs: kwargs,
        options=(
            ExperimentOption(flag="--count", dest="count", type=int, default=3),
            ExperimentOption(
                flag="--ms",
                dest="ms",
                type=float,
                convert=lambda v: v / 1000.0,
                kwarg="seconds",
            ),
            ExperimentOption(
                flag="--threshold-override",
                dest="threshold_override",
                type=float,
                config_field="latency_threshold_s",
            ),
        ),
    )

    def test_defaults_and_conversion(self):
        config, kwargs = resolve_options(self.SPEC, SMALL, {"ms": 50.0})
        assert config is SMALL
        assert kwargs == {"count": 3, "seconds": 0.05}

    def test_config_field_folds_into_config(self):
        config, kwargs = resolve_options(self.SPEC, SMALL, {"threshold_override": 0.04})
        assert config.latency_threshold_s == pytest.approx(0.04)
        assert "threshold_override" not in kwargs

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown option"):
            resolve_options(self.SPEC, SMALL, {"bogus": 1})


class TestDispatchValidation:
    def test_protocol_labels_validated_in_dispatch(self):
        """The registry checkpoint: a typo'd protocol fails before any
        simulation starts, for every experiment that accepts protocol labels."""
        for name in ("overhead", "attacks", "doublespend", "churn_resilience"):
            with pytest.raises(ValueError, match="unknown policy"):
                run_experiment(name, SMALL, {"protocols": ("bitcion",)})

    def test_threshold_suffix_labels_accepted(self):
        validate_protocol_labels(["bcbpt@50ms", "bitcoin"])
        with pytest.raises(ValueError, match="unknown policy"):
            validate_protocol_labels(["bcbpt@50ms", "bitcond"])


class TestEnvelope:
    def test_envelope_carries_config_seeds_and_payload(self):
        result = run_experiment("validation", SMALL, {"crawler_samples": 500})
        assert result.experiment == "validation"
        assert result.experiment_id == "Val-1"
        assert result.seeds == [5]
        assert result.config["node_count"] == 40
        assert result.options == {"crawler_samples": 500}
        assert result.payload.all_ok == result.verdicts["all_ok"]
        assert result.sections, "report sections must be captured"
        # The envelope must survive a JSON round trip untouched.
        from repro.experiments.results import ExperimentResult

        clone = ExperimentResult.from_json(result.to_json())
        assert clone.to_dict() == result.to_dict()


class TestFig3Equivalence:
    """Acceptance criterion: the ported fig3 path produces byte-identical
    aggregates to the pre-redesign ``run_protocol_comparison`` for every
    worker count."""

    @pytest.fixture(scope="class")
    def reference(self):
        return run_protocol_comparison(FIG3_PROTOCOLS, SMALL)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_ported_fig3_matches_direct_comparison(self, reference, workers):
        config = SMALL.with_overrides(workers=workers)
        ported = run_experiment("fig3", config).payload
        assert set(ported) == set(reference)
        for protocol in reference:
            old, new = reference[protocol], ported[protocol]
            assert new.delays.samples == old.delays.samples
            assert set(new.per_seed) == set(old.per_seed)
            for seed in old.per_seed:
                assert new.per_seed[seed].samples == old.per_seed[seed].samples
            assert set(new.per_rank) == set(old.per_rank)
            for rank in old.per_rank:
                assert new.per_rank[rank].samples == old.per_rank[rank].samples
            assert new.cluster_summaries == old.cluster_summaries

    @pytest.mark.parametrize("workers", [1, 2])
    def test_envelope_summaries_worker_invariant(self, reference, workers):
        config = SMALL.with_overrides(workers=workers)
        result = run_experiment("fig3", config)
        for protocol in reference:
            assert result.summaries[protocol] == reference[protocol].summary()


class TestNewlyParallelJobs:
    """overhead and attacks moved from serial loops onto the seed grid; their
    results must be identical for every worker count (frozen dataclasses, so
    equality is field-by-field)."""

    CFG = ExperimentConfig(
        node_count=40, runs=1, seeds=(5, 11), measuring_nodes=1, run_timeout_s=30.0
    )

    def test_overhead_worker_invariant(self):
        serial = run_experiment("overhead", self.CFG.with_overrides(workers=1)).payload
        parallel = run_experiment("overhead", self.CFG.with_overrides(workers=2)).payload
        assert serial == parallel

    #: Small dynamic-adversary sweep: enough cells to exercise the attack
    #: grid without running the full five-attack default in a unit test.
    ATTACK_OPTIONS = {
        "attacks": ("byzantine",),
        "protocols": ("bitcoin", "bcbpt"),
        "attack_blocks": 1,
        "attack_txs": 2,
    }

    def test_attacks_worker_invariant(self):
        serial = run_experiment(
            "attacks", self.CFG.with_overrides(workers=1), dict(self.ATTACK_OPTIONS)
        ).payload
        parallel = run_experiment(
            "attacks", self.CFG.with_overrides(workers=2), dict(self.ATTACK_OPTIONS)
        ).payload
        assert serial == parallel
