"""Tests for the ablation experiment drivers (small scale)."""

import pytest

from repro.experiments.ablation import (
    build_report,
    run_long_link_ablation,
    run_verification_ablation,
)
from repro.experiments.config import ExperimentConfig

SMALL = ExperimentConfig(
    node_count=40, runs=2, seeds=(5,), measuring_nodes=1, run_timeout_s=30.0
)


class TestVerificationAblation:
    def test_two_variants_returned(self):
        points = run_verification_ablation(SMALL)
        assert [p.variant for p in points] == ["verify-then-relay", "pipelined-relay"]
        for point in points:
            assert point.mean_delay_s > 0
            assert point.variance_s2 >= 0

    def test_pipelining_is_not_slower(self):
        points = {p.variant: p for p in run_verification_ablation(SMALL)}
        assert (
            points["pipelined-relay"].mean_delay_s
            <= points["verify-then-relay"].mean_delay_s * 1.05
        )


class TestLongLinkAblation:
    def test_requested_counts_returned(self):
        points = run_long_link_ablation(SMALL, counts=(0, 3))
        assert [p.variant for p in points] == ["long-links=0", "long-links=3"]

    def test_more_long_links_raise_degree(self):
        points = {p.variant: p for p in run_long_link_ablation(SMALL, counts=(0, 3))}
        assert points["long-links=3"].average_degree > points["long-links=0"].average_degree


class TestAblationReport:
    def test_report_renders_both_sections(self):
        verification = run_verification_ablation(SMALL)
        long_links = run_long_link_ablation(SMALL, counts=(0, 2))
        report = build_report(verification, long_links)
        text = report.render()
        assert "Ext-5" in text
        assert "Verification-delay ablation" in text
        assert "Long-link ablation" in text
