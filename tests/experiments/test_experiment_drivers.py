"""Tests for the experiment runner and the per-figure drivers.

These use deliberately small configurations (tens of nodes, a handful of
runs) so the whole module executes in well under a minute; the full-scale
reproduction lives in ``benchmarks/``.
"""

import pytest

from repro.experiments.attacks import run_eclipse, run_partition, build_report as attacks_report
from repro.experiments.config import ExperimentConfig
from repro.experiments.doublespend import build_report as ds_report, run_doublespend
from repro.experiments.fig3 import FIG3_PROTOCOLS, build_report as fig3_report, run_fig3
from repro.experiments.fig4 import (
    build_report as fig4_report,
    run_fig4,
    threshold_labels,
    variance_is_monotone,
)
from repro.experiments.overhead import build_report as overhead_report, run_overhead
from repro.experiments.runner import PropagationExperiment, run_protocol_comparison
from repro.experiments.threshold_sweep import build_report as sweep_report, run_threshold_sweep
from repro.experiments.validation import build_report as validation_report, run_validation
from repro.workloads.network_gen import NetworkParameters
from repro.workloads.scenarios import build_scenario


SMALL = ExperimentConfig(
    node_count=40, runs=2, seeds=(5,), measuring_nodes=2, run_timeout_s=30.0
)


class TestPropagationExperiment:
    def test_run_produces_samples(self):
        scenario = build_scenario(
            "bcbpt", NetworkParameters(node_count=40, seed=5), latency_threshold_s=0.025
        )
        result = PropagationExperiment(scenario, SMALL).run()
        assert len(result.delays) > 0
        assert result.protocol == "bcbpt"
        assert 1 in result.per_rank
        assert 5 in result.per_seed
        assert result.cluster_summaries[5]["cluster_count"] >= 1

    def test_measuring_nodes_spread(self):
        scenario = build_scenario("bitcoin", NetworkParameters(node_count=40, seed=5))
        experiment = PropagationExperiment(scenario, SMALL)
        ids = experiment.measuring_node_ids()
        assert len(ids) == 2
        assert len(set(ids)) == 2

    def test_repetition_override(self):
        scenario = build_scenario("bitcoin", NetworkParameters(node_count=40, seed=5))
        result = PropagationExperiment(scenario, SMALL).run(repetitions=1)
        assert all(c.run_count == 1 for c in result.campaigns)


class TestProtocolComparison:
    def test_labels_with_thresholds(self):
        results = run_protocol_comparison(
            ("bcbpt@40ms",), SMALL.with_overrides(measuring_nodes=1, runs=1)
        )
        assert "bcbpt@40ms" in results
        assert len(results["bcbpt@40ms"].delays) > 0

    def test_bad_threshold_label_rejected(self):
        with pytest.raises(ValueError):
            run_protocol_comparison(("bcbpt@40s",), SMALL)

    def test_rank_curves_available(self):
        results = run_protocol_comparison(("bitcoin",), SMALL.with_overrides(runs=2))
        curve = results["bitcoin"].rank_mean_curve()
        assert curve and curve[0][0] == 1


class TestFig3:
    def test_runs_and_reports(self):
        results = run_fig3(SMALL)
        assert set(results) == set(FIG3_PROTOCOLS)
        report = fig3_report(results)
        text = report.render()
        assert "Fig. 3" in text
        assert "bitcoin" in text and "bcbpt" in text
        assert "summaries" in report.data

    def test_bitcoin_is_slowest_even_at_small_scale(self):
        results = run_fig3(SMALL)
        assert (
            results["bitcoin"].summary()["mean_s"]
            > results["bcbpt"].summary()["mean_s"]
        )


class TestFig4:
    def test_threshold_labels(self):
        assert threshold_labels([0.03, 0.1]) == ["bcbpt@30ms", "bcbpt@100ms"]

    def test_runs_and_reports(self):
        config = SMALL.with_overrides(fig4_thresholds_s=(0.030, 0.100))
        results = run_fig4(config)
        assert set(results) == {"bcbpt@30ms", "bcbpt@100ms"}
        report = fig4_report(results)
        assert "Fig. 4" in report.render()
        # Monotonicity check runs without error on two points.
        assert variance_is_monotone(results) in (True, False)


class TestThresholdSweep:
    def test_sweep_points_and_cluster_trend(self):
        points = run_threshold_sweep(
            SMALL.with_overrides(runs=1, measuring_nodes=1), thresholds_s=(0.02, 0.15)
        )
        assert len(points) == 2
        assert points[0].threshold_s == pytest.approx(0.02)
        # Smaller threshold -> at least as many clusters.
        assert points[0].cluster_count >= points[1].cluster_count
        report = sweep_report(points)
        assert "Ext-1" in report.render()


class TestOverhead:
    def test_bcbpt_pays_ping_overhead_bitcoin_does_not(self):
        points = run_overhead(SMALL.with_overrides(runs=1, measuring_nodes=1))
        by_name = {p.protocol: p for p in points}
        assert by_name["bitcoin"].ping_messages_per_node == 0
        assert by_name["bcbpt"].ping_messages_per_node > 0
        assert by_name["bcbpt"].control_messages_per_node > 0
        report = overhead_report(points)
        assert "Ext-2" in report.render()


class TestAttacks:
    def test_eclipse_results(self):
        results = run_eclipse(SMALL, adversary_fraction=0.2)
        assert len(results) == 3
        for result in results:
            assert 0.0 <= result.eclipsed_fraction <= 1.0
        clustered = {r.protocol: r.eclipsed_fraction for r in results}
        # Proximity clustering concentrates the victim's connections among
        # nearby (adversarial) peers at least as much as random selection.
        assert clustered["bcbpt"] >= clustered["bitcoin"] * 0.5

    def test_partition_results(self):
        results = run_partition(SMALL)
        by_name = {r.protocol: r for r in results}
        for result in results:
            assert result.boundary_links >= 0
            assert 0.0 < result.largest_component_fraction <= 1.0
        # Severing a cluster boundary is cheaper (fewer links) than severing a
        # comparable region boundary in the random topology.
        assert by_name["bcbpt"].boundary_fraction <= by_name["bitcoin"].boundary_fraction * 1.5
        report = attacks_report(run_eclipse(SMALL), results)
        assert "Ext-3" in report.render()

    def test_invalid_adversary_fraction(self):
        with pytest.raises(ValueError):
            run_eclipse(SMALL, adversary_fraction=1.5)


class TestDoubleSpend:
    def test_races_produce_outcomes(self):
        points = run_doublespend(SMALL, races_per_seed=2, race_horizon_s=1.0)
        assert len(points) == 3
        for point in points:
            assert point.races == 2
            assert 0.0 <= point.mean_attacker_share <= 1.0
            assert 0.0 <= point.detection_rate <= 1.0
        report = ds_report(points)
        assert "Ext-4" in report.render()

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            run_doublespend(SMALL, races_per_seed=0)
        with pytest.raises(ValueError):
            run_doublespend(SMALL, race_horizon_s=0.0)


class TestValidation:
    def test_validation_passes_on_default_substrate(self):
        summary = run_validation(SMALL, crawler_samples=1_000)
        assert summary.rtt_shape_ok
        assert summary.delay_shape_ok
        assert summary.all_ok
        report = validation_report(summary)
        assert "Val-1" in report.render()

    def test_invalid_crawler_samples_rejected(self):
        with pytest.raises(ValueError):
            run_validation(SMALL, crawler_samples=0)
