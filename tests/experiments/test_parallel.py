"""Determinism tests for the parallel experiment runner.

The contract: every (protocol, seed) job derives all randomness from its own
master seed, jobs merge in submission order, and ``workers=1`` runs the exact
serial path — so any worker count produces identical results.  These tests
compare full pooled delay distributions and cluster summaries (not just
summary statistics) between the serial path and a multi-process run.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.doublespend import run_doublespend
from repro.experiments.parallel import ParallelRunner, resolve_workers
from repro.experiments.runner import run_protocol_comparison

#: Small enough to keep the multi-process comparison in CI-friendly time
#: (below ~80 nodes a BCBPT measuring node can end up with no proximity
#: connections, so do not shrink further).
QUICK = ExperimentConfig(node_count=80, runs=2, seeds=(3, 11), measuring_nodes=2)


def _double(value: int) -> int:
    return value * 2


class TestParallelRunner:
    def test_results_preserve_submission_order(self):
        runner = ParallelRunner(workers=4)
        assert runner.map_jobs(_double, list(range(20))) == [2 * i for i in range(20)]

    def test_empty_jobs(self):
        assert ParallelRunner(workers=4).map_jobs(_double, []) == []

    def test_serial_path_avoids_multiprocessing(self):
        # workers=1 must call the function inline: a non-picklable closure
        # only survives the serial path.
        captured = []
        runner = ParallelRunner(workers=1)
        assert runner.map_jobs(lambda v: captured.append(v) or v, [1, 2]) == [1, 2]
        assert captured == [1, 2]

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(workers=-1)

    def test_resolve_workers(self):
        assert resolve_workers(1, 10) == 1
        assert resolve_workers(8, 3) == 3
        assert resolve_workers(0, 2) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1, 4)


def _assert_same_results(serial, parallel):
    assert set(serial) == set(parallel)
    for label in serial:
        a, b = serial[label], parallel[label]
        assert a.delays.samples == b.delays.samples
        assert set(a.per_seed) == set(b.per_seed)
        for seed in a.per_seed:
            assert a.per_seed[seed].samples == b.per_seed[seed].samples
        assert a.cluster_summaries == b.cluster_summaries
        assert sorted(a.per_rank) == sorted(b.per_rank)
        for rank in a.per_rank:
            assert a.per_rank[rank].samples == b.per_rank[rank].samples
        assert len(a.campaigns) == len(b.campaigns)


class TestWorkerCountInvariance:
    def test_comparison_identical_for_1_and_4_workers(self):
        serial = run_protocol_comparison(("bitcoin", "bcbpt"), QUICK.with_overrides(workers=1))
        parallel = run_protocol_comparison(("bitcoin", "bcbpt"), QUICK.with_overrides(workers=4))
        _assert_same_results(serial, parallel)

    def test_doublespend_identical_for_1_and_4_workers(self):
        serial = run_doublespend(
            QUICK.with_overrides(workers=1), races_per_seed=2, race_horizon_s=1.0
        )
        parallel = run_doublespend(
            QUICK.with_overrides(workers=4), races_per_seed=2, race_horizon_s=1.0
        )
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.protocol == b.protocol
            assert a.races == b.races
            assert a.mean_attacker_share == b.mean_attacker_share
            assert a.detection_rate == b.detection_rate
            if math.isnan(a.mean_detection_time_s):
                assert math.isnan(b.mean_detection_time_s)
            else:
                assert a.mean_detection_time_s == b.mean_detection_time_s
