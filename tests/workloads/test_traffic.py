"""Tests for the open-loop traffic plane (profiles, fees, tracker, model)."""

import numpy as np
import pytest

from repro.analysis.stats import percentile
from repro.protocol.mining import MiningProcess, equal_hash_power
from repro.protocol.node import NodeConfig
from repro.workloads.generators import fund_nodes
from repro.workloads.network_gen import NetworkParameters, build_network
from repro.workloads.traffic import (
    ConfirmationTracker,
    FeeModel,
    TrafficModel,
    TrafficProfile,
)


def build_loaded_network(node_count=10, seed=7, **node_config_kwargs):
    """A small funded ring-with-chords network for traffic tests."""
    params = NetworkParameters(
        node_count=node_count, seed=seed, node_config=NodeConfig(**node_config_kwargs)
    )
    simulated = build_network(params)
    ids = simulated.node_ids()
    for index, node_id in enumerate(ids):
        simulated.network.connect(node_id, ids[(index + 1) % len(ids)])
        simulated.network.connect(node_id, ids[(index + 3) % len(ids)])
    fund_nodes(list(simulated.nodes.values()), outputs_per_node=4)
    return simulated


class TestTrafficProfile:
    def test_constant_rate(self):
        profile = TrafficProfile(kind="constant", rate_tps=3.0)
        assert profile.rate_at(0.0) == 3.0
        assert profile.rate_at(1e6) == 3.0
        assert profile.peak_rate() == 3.0

    def test_ramp_interpolates_and_clamps(self):
        profile = TrafficProfile(
            kind="ramp", rate_tps=10.0, base_rate_tps=2.0, ramp_duration_s=100.0
        )
        assert profile.rate_at(0.0) == 2.0
        assert profile.rate_at(50.0) == pytest.approx(6.0)
        assert profile.rate_at(100.0) == 10.0
        assert profile.rate_at(500.0) == 10.0
        assert profile.peak_rate() == 10.0

    def test_step_jumps_at_the_step_time(self):
        profile = TrafficProfile(
            kind="step", rate_tps=8.0, base_rate_tps=2.0, step_at_s=60.0
        )
        assert profile.rate_at(59.999) == 2.0
        assert profile.rate_at(60.0) == 8.0

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown profile kind"):
            TrafficProfile(kind="burst")
        with pytest.raises(ValueError, match="rate_tps must be positive"):
            TrafficProfile(rate_tps=0.0)
        with pytest.raises(ValueError, match="ramp_duration_s"):
            TrafficProfile(kind="ramp", rate_tps=1.0)
        with pytest.raises(ValueError, match="step_at_s"):
            TrafficProfile(kind="step", rate_tps=1.0)


class TestFeeModel:
    def test_draws_respect_the_floor(self):
        model = FeeModel(mean_fee_satoshi=100.0, min_fee_satoshi=7)
        rng = np.random.default_rng(1)
        draws = [model.draw(rng) for _ in range(200)]
        assert all(draw >= 7 for draw in draws)
        assert len(set(draws)) > 10  # actually a distribution

    def test_zero_mean_is_the_constant_floor(self):
        model = FeeModel(mean_fee_satoshi=0.0, min_fee_satoshi=3)
        rng = np.random.default_rng(1)
        assert [model.draw(rng) for _ in range(5)] == [3] * 5

    def test_validation(self):
        with pytest.raises(ValueError):
            FeeModel(mean_fee_satoshi=-1.0)
        with pytest.raises(ValueError):
            FeeModel(min_fee_satoshi=-1)


class TestTrafficModelDeterminism:
    def run_cell(self, seed=7):
        simulated = build_loaded_network(seed=seed)
        traffic = TrafficModel(
            simulated.simulator,
            simulated.nodes,
            profile=TrafficProfile(kind="constant", rate_tps=2.0),
            fee_model=FeeModel(mean_fee_satoshi=100.0),
        )
        traffic.start()
        simulated.simulator.run(until=30.0)
        traffic.stop()
        return traffic

    def test_same_seed_same_workload(self):
        first = self.run_cell()
        second = self.run_cell()
        assert first.txs_generated == second.txs_generated
        assert first.fees_offered == second.fees_offered
        assert first.generation_failures == second.generation_failures
        assert first.txs_generated > 20  # ~2 tx/s * 30 s

    def test_different_seed_different_workload(self):
        assert self.run_cell(seed=7).fees_offered != self.run_cell(seed=8).fees_offered

    def test_traffic_streams_do_not_perturb_other_consumers(self):
        """The golden-safety contract: wiring a TrafficModel must not change
        a single draw seen by any other named stream of the same master seed."""
        simulated = build_loaded_network()
        baseline = simulated.simulator.random.stream("mining").random(8)
        loaded = build_loaded_network()
        TrafficModel(
            loaded.simulator,
            loaded.nodes,
            profile=TrafficProfile(kind="constant", rate_tps=5.0),
        )
        assert np.array_equal(loaded.simulator.random.stream("mining").random(8), baseline)

    def test_generated_transactions_carry_fees(self):
        simulated = build_loaded_network()
        traffic = TrafficModel(
            simulated.simulator,
            simulated.nodes,
            profile=TrafficProfile(kind="constant", rate_tps=2.0),
            fee_model=FeeModel(mean_fee_satoshi=500.0, min_fee_satoshi=1),
        )
        traffic.start()
        simulated.simulator.run(until=20.0)
        traffic.stop()
        assert traffic.txs_generated > 0
        assert traffic.fees_offered >= traffic.txs_generated  # floor is 1

    def test_validation(self):
        simulated = build_loaded_network()
        profile = TrafficProfile(kind="constant", rate_tps=1.0)
        with pytest.raises(ValueError, match="at least one node"):
            TrafficModel(simulated.simulator, {}, profile=profile)
        with pytest.raises(ValueError, match="payment_satoshi"):
            TrafficModel(
                simulated.simulator, simulated.nodes, profile=profile, payment_satoshi=0
            )
        traffic = TrafficModel(simulated.simulator, simulated.nodes, profile=profile)
        traffic.start()
        with pytest.raises(RuntimeError, match="already running"):
            traffic.start()


class TestThinning:
    def test_ramp_generates_fewer_than_constant_peak(self):
        """Thinning must track the schedule: a 0→r ramp over the whole window
        accepts roughly half the arrivals a constant-r schedule does."""
        constant = build_loaded_network()
        flat = TrafficModel(
            constant.simulator,
            constant.nodes,
            profile=TrafficProfile(kind="constant", rate_tps=4.0),
        )
        flat.start()
        constant.simulator.run(until=60.0)
        flat.stop()

        ramped_net = build_loaded_network()
        ramped = TrafficModel(
            ramped_net.simulator,
            ramped_net.nodes,
            profile=TrafficProfile(
                kind="ramp", rate_tps=4.0, base_rate_tps=0.0, ramp_duration_s=60.0
            ),
        )
        ramped.start()
        ramped_net.simulator.run(until=60.0)
        ramped.stop()

        flat_offered = flat.txs_generated + flat.generation_failures
        ramp_offered = ramped.txs_generated + ramped.generation_failures
        assert 0.3 < ramp_offered / flat_offered < 0.7


class ExactQuantile:
    """StreamingQuantile stand-in that stores every sample (test oracle)."""

    def __init__(self, q):
        self.q = q
        self.samples = []

    def add(self, value):
        self.samples.append(float(value))

    def value(self):
        return percentile(self.samples, self.q * 100)


class TestConfirmationTracker:
    def run_tracked_cell(self, *, rate_tps=0.4, horizon_s=120.0, depth=2):
        simulated = build_loaded_network()
        observer = simulated.node(simulated.node_ids()[0])
        tracker = ConfirmationTracker(observer, depth=depth)
        exact_p50 = ExactQuantile(0.5)
        tracker.p50 = exact_p50  # record the stream for the oracle comparison
        traffic = TrafficModel(
            simulated.simulator,
            simulated.nodes,
            profile=TrafficProfile(kind="constant", rate_tps=rate_tps),
            tracker=tracker,
        )
        mining = MiningProcess(
            simulated.simulator,
            simulated.nodes,
            equal_hash_power(simulated.node_ids()),
            simulated.simulator.random.stream("mining"),
            block_interval_s=10.0,
        )
        traffic.start()
        mining.start()
        simulated.simulator.run(until=horizon_s)
        traffic.stop()
        mining.stop()
        return tracker, exact_p50

    def test_confirms_after_depth_burials(self):
        tracker, exact = self.run_tracked_cell()
        assert tracker.confirmed > 0
        assert tracker.confirmed == len(exact.samples)
        # Burial takes at least (depth - 1) further blocks, so latency is
        # bounded below by propagation alone being impossible: it is positive.
        assert all(sample > 0 for sample in exact.samples)
        assert tracker.latency_max == max(exact.samples)
        assert tracker.mean_latency == pytest.approx(
            sum(exact.samples) / len(exact.samples)
        )

    def test_p99_stays_within_observed_range(self):
        tracker, exact = self.run_tracked_cell(rate_tps=1.0)
        assert tracker.confirmed > 5
        assert min(exact.samples) <= tracker.p99.value() <= max(exact.samples)

    def test_pending_counts_unconfirmed(self):
        tracker, _ = self.run_tracked_cell(horizon_s=40.0)
        # The tail of the run has registered-but-unburied transactions.
        assert tracker.pending >= 0
        assert tracker.confirmed + tracker.pending > tracker.confirmed - 1

    def test_depth_validation(self):
        simulated = build_loaded_network()
        with pytest.raises(ValueError, match="depth"):
            ConfirmationTracker(simulated.node(0), depth=0)

    def test_mean_latency_zero_before_any_confirmation(self):
        simulated = build_loaded_network()
        tracker = ConfirmationTracker(simulated.node(0), depth=6)
        assert tracker.mean_latency == 0.0
        assert tracker.pending == 0
