"""Tests for network construction, funding and transaction workloads."""

import pytest

from repro.workloads.generators import TransactionWorkload, WorkloadConfig, fund_nodes
from repro.workloads.network_gen import NetworkParameters, build_network
from repro.workloads.scenarios import (
    POLICY_NAMES,
    ChurnSchedule,
    build_policy,
    build_scenario,
    validate_policy_name,
)


class TestNetworkParameters:
    def test_defaults_valid(self):
        NetworkParameters()

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            NetworkParameters(node_count=1)

    def test_with_overrides(self):
        params = NetworkParameters(node_count=50, seed=1)
        changed = params.with_overrides(seed=2)
        assert changed.seed == 2
        assert changed.node_count == 50
        assert params.seed == 1


class TestBuildNetwork:
    def test_builds_requested_node_count(self, small_network):
        assert small_network.node_count == 30
        assert small_network.network.node_count == 30

    def test_nodes_share_genesis(self, small_network):
        hashes = {node.blockchain.genesis.block_hash for node in small_network.nodes.values()}
        assert len(hashes) == 1

    def test_all_nodes_online_and_in_seed(self, small_network):
        assert len(small_network.network.online_node_ids()) == 30
        assert small_network.seed_service.online_count() == 30

    def test_no_links_before_policy(self, small_network):
        assert small_network.network.topology.link_count == 0

    def test_same_seed_same_positions(self):
        a = build_network(NetworkParameters(node_count=20, seed=3))
        b = build_network(NetworkParameters(node_count=20, seed=3))
        positions_a = [(n.position.latitude, n.position.longitude) for n in a.nodes.values()]
        positions_b = [(n.position.latitude, n.position.longitude) for n in b.nodes.values()]
        assert positions_a == positions_b

    def test_different_seed_different_positions(self):
        a = build_network(NetworkParameters(node_count=20, seed=3))
        b = build_network(NetworkParameters(node_count=20, seed=4))
        positions_a = [(n.position.latitude, n.position.longitude) for n in a.nodes.values()]
        positions_b = [(n.position.latitude, n.position.longitude) for n in b.nodes.values()]
        assert positions_a != positions_b

    def test_bandwidth_model_optional(self):
        without = build_network(NetworkParameters(node_count=10, seed=1, use_bandwidth_model=False))
        assert without.bandwidth_model is None


class TestFunding:
    def test_funding_gives_spendable_balance(self, small_network):
        fund_nodes(list(small_network.nodes.values()), amount_satoshi=500, outputs_per_node=2)
        for node in small_network.nodes.values():
            assert node.balance() == 1000
            assert len(node.spendable_outputs()) == 2
            assert node.blockchain.height == 1

    def test_all_nodes_agree_on_funding_block(self, small_network):
        block = fund_nodes(list(small_network.nodes.values()))
        tips = {node.blockchain.tip.block_hash for node in small_network.nodes.values()}
        assert tips == {block.block_hash}

    def test_partial_funding(self, small_network):
        fund_nodes(list(small_network.nodes.values()), funded_node_ids=[0, 1])
        assert small_network.node(0).balance() > 0
        assert small_network.node(5).balance() == 0

    def test_unknown_funded_id_rejected(self, small_network):
        with pytest.raises(ValueError):
            fund_nodes(list(small_network.nodes.values()), funded_node_ids=[999])

    def test_double_funding_rejected(self, small_network):
        nodes = list(small_network.nodes.values())
        fund_nodes(nodes)
        with pytest.raises(ValueError):
            fund_nodes(nodes)

    def test_invalid_amounts_rejected(self, small_network):
        nodes = list(small_network.nodes.values())
        with pytest.raises(ValueError):
            fund_nodes(nodes, amount_satoshi=0)
        with pytest.raises(ValueError):
            fund_nodes(nodes, outputs_per_node=0)
        with pytest.raises(ValueError):
            fund_nodes([])


class TestTransactionWorkload:
    def test_workload_generates_transactions(self):
        scenario = build_scenario("bitcoin", NetworkParameters(node_count=20, seed=6))
        simulated = scenario.network
        fund_nodes(list(simulated.nodes.values()), outputs_per_node=10)
        workload = TransactionWorkload(
            simulated.simulator,
            simulated.nodes,
            simulated.simulator.random.stream("workload"),
            WorkloadConfig(transactions_per_second=2.0, sender_count=5),
        )
        workload.start()
        simulated.simulator.run(until=20.0)
        workload.stop()
        assert workload.transactions_created > 10
        assert len(workload.senders) == 5
        # Generated transactions actually propagate.
        mempool_sizes = [len(node.mempool) for node in simulated.nodes.values()]
        assert max(mempool_sizes) > 0

    def test_double_start_rejected(self, small_network):
        workload = TransactionWorkload(
            small_network.simulator,
            small_network.nodes,
            small_network.simulator.random.stream("w"),
        )
        workload.start()
        with pytest.raises(RuntimeError):
            workload.start()

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(transactions_per_second=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(sender_count=0)


class TestScenarios:
    def test_policy_names_constant(self):
        assert set(POLICY_NAMES) == {"bitcoin", "lbc", "bcbpt"}

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_build_scenario_for_every_policy(self, name):
        scenario = build_scenario(name, NetworkParameters(node_count=25, seed=8))
        assert scenario.name == name
        assert scenario.build_report.node_count == 25
        assert scenario.network.network.topology.is_connected()

    def test_unknown_policy_rejected(self, small_network):
        with pytest.raises(ValueError):
            build_policy("mystery", small_network)

    def test_threshold_passed_to_bcbpt(self, small_network):
        policy = build_policy("bcbpt", small_network, latency_threshold_s=0.07)
        assert policy.config.latency_threshold_s == pytest.approx(0.07)

    def test_same_parameters_give_same_node_placement_across_policies(self):
        params = NetworkParameters(node_count=25, seed=8)
        a = build_scenario("bitcoin", params)
        b = build_scenario("bcbpt", params)
        pos_a = [(n.position.latitude, n.position.longitude) for n in a.network.nodes.values()]
        pos_b = [(n.position.latitude, n.position.longitude) for n in b.network.nodes.values()]
        assert pos_a == pos_b

    def test_validate_policy_name_accepts_known_and_rejects_unknown(self):
        for name in POLICY_NAMES:
            assert validate_policy_name(name) == name
        with pytest.raises(ValueError, match="unknown policy 'btc'"):
            validate_policy_name("btc")

    def test_build_scenario_rejects_unknown_policy_before_building(self):
        # The name check fires before any (expensive) network construction.
        with pytest.raises(ValueError, match="unknown policy"):
            build_scenario("mystery", NetworkParameters(node_count=25, seed=8))


class TestChurnSchedule:
    def test_defaults_valid(self):
        schedule = ChurnSchedule()
        params = schedule.session_parameters()
        assert params.median_session_s == schedule.median_session_s
        assert params.stable_fraction == schedule.stable_fraction

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"median_session_s": 0.0},
            {"sigma": -1.0},
            {"stable_fraction": 1.5},
            {"stable_session_s": 0.0},
            {"mean_downtime_s": -1.0},
            {"start_delay_s": -0.1},
            {"discovery_interval_s": 0.0},
            {"repair_interval_s": -2.0},
        ],
    )
    def test_invalid_schedule_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChurnSchedule(**kwargs)


class TestDynamicScenario:
    SCHEDULE = ChurnSchedule(
        median_session_s=20.0,
        stable_fraction=0.0,
        mean_downtime_s=10.0,
        discovery_interval_s=2.0,
        repair_interval_s=5.0,
    )

    def test_static_scenario_has_no_maintainer(self):
        scenario = build_scenario("bcbpt", NetworkParameters(node_count=25, seed=8))
        assert not scenario.dynamic
        assert scenario.maintainer is None
        with pytest.raises(RuntimeError, match="without a ChurnSchedule"):
            scenario.start_churn()

    def test_churn_schedule_wires_maintainer_and_resync(self):
        scenario = build_scenario(
            "bcbpt", NetworkParameters(node_count=25, seed=8), churn=self.SCHEDULE
        )
        assert scenario.dynamic
        assert scenario.maintainer is not None
        assert scenario.churn is self.SCHEDULE
        # Every node resynchronises inventory on reconnect under churn.
        for node in scenario.network.nodes.values():
            assert node.config.resync_on_reconnect
        # The network's session model follows the schedule.
        assert (
            scenario.network.session_model.parameters.median_session_s
            == self.SCHEDULE.median_session_s
        )

    def test_start_churn_spares_requested_nodes(self):
        scenario = build_scenario(
            "bcbpt", NetworkParameters(node_count=25, seed=8), churn=self.SCHEDULE
        )
        spared = scenario.network.node_ids()[:2]
        scenario.start_churn(spare=spared)
        scenario.simulator.run(until=200.0)
        maintainer = scenario.maintainer
        assert maintainer.churn.leave_events > 0
        network = scenario.network.network
        for node_id in spared:
            assert network.is_online(node_id), "spared nodes must never leave"
            assert node_id not in maintainer.churn._online

    def test_start_delay_postpones_churn(self):
        delayed = ChurnSchedule(
            median_session_s=20.0,
            stable_fraction=0.0,
            mean_downtime_s=10.0,
            start_delay_s=50.0,
            discovery_interval_s=None,
            repair_interval_s=None,
        )
        scenario = build_scenario(
            "bcbpt", NetworkParameters(node_count=25, seed=8), churn=delayed
        )
        scenario.start_churn()
        scenario.simulator.run(until=40.0)
        assert scenario.maintainer.churn.leave_events == 0
        scenario.simulator.run(until=200.0)
        assert scenario.maintainer.churn.leave_events > 0
