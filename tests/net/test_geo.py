"""Tests for the geographic model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.geo import EARTH_RADIUS_KM, GeoModel, GeoPosition, Region, WORLD_REGIONS, haversine_km


class TestHaversine:
    def test_zero_distance_for_same_point(self):
        assert haversine_km(48.85, 2.35, 48.85, 2.35) == pytest.approx(0.0)

    def test_known_city_pair_london_paris(self):
        distance = haversine_km(51.51, -0.13, 48.86, 2.35)
        assert 330 <= distance <= 360

    def test_known_city_pair_new_york_london(self):
        distance = haversine_km(40.71, -74.01, 51.51, -0.13)
        assert 5500 <= distance <= 5700

    def test_antipodal_distance_is_half_circumference(self):
        distance = haversine_km(0.0, 0.0, 0.0, 180.0)
        assert distance == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-6)

    def test_symmetry(self):
        a = haversine_km(10.0, 20.0, -30.0, 100.0)
        b = haversine_km(-30.0, 100.0, 10.0, 20.0)
        assert a == pytest.approx(b)

    @given(
        lat1=st.floats(-89, 89),
        lon1=st.floats(-180, 180),
        lat2=st.floats(-89, 89),
        lon2=st.floats(-180, 180),
    )
    @settings(max_examples=200, deadline=None)
    def test_distance_bounds_property(self, lat1, lon1, lat2, lon2):
        distance = haversine_km(lat1, lon1, lat2, lon2)
        assert 0.0 <= distance <= math.pi * EARTH_RADIUS_KM + 1e-6

    @given(lat=st.floats(-89, 89), lon=st.floats(-180, 180))
    @settings(max_examples=100, deadline=None)
    def test_identity_property(self, lat, lon):
        assert haversine_km(lat, lon, lat, lon) == pytest.approx(0.0, abs=1e-9)


class TestGeoPosition:
    def test_distance_between_positions(self):
        a = GeoPosition(51.51, -0.13, "uk", "GB")
        b = GeoPosition(48.86, 2.35, "france", "FR")
        assert a.distance_km(b) == pytest.approx(haversine_km(51.51, -0.13, 48.86, 2.35))


class TestRegions:
    def test_default_regions_cover_weight(self):
        total = sum(region.weight for region in WORLD_REGIONS)
        assert total == pytest.approx(1.0, abs=0.05)

    def test_region_names_unique(self):
        names = [region.name for region in WORLD_REGIONS]
        assert len(names) == len(set(names))


class TestGeoModel:
    def test_positions_have_valid_coordinates(self, geo_model):
        for position in geo_model.sample_positions(200):
            assert -90 <= position.latitude <= 90
            assert -180 <= position.longitude <= 180

    def test_positions_carry_known_region_names(self, geo_model):
        names = {region.name for region in WORLD_REGIONS}
        for position in geo_model.sample_positions(100):
            assert position.region in names

    def test_region_weights_respected_roughly(self):
        rng = np.random.default_rng(7)
        model = GeoModel(rng)
        positions = model.sample_positions(3000)
        us_share = sum(1 for p in positions if p.country == "US") / len(positions)
        # US regions total ~0.35 of the default weight.
        assert 0.25 <= us_share <= 0.45

    def test_nodes_cluster_near_region_anchor(self):
        rng = np.random.default_rng(7)
        region = Region("test", "XX", 10.0, 20.0, weight=1.0, spread_km=100.0)
        model = GeoModel(rng, regions=[region])
        anchor = GeoPosition(10.0, 20.0, "test", "XX")
        distances = [anchor.distance_km(p) for p in model.sample_positions(300)]
        assert np.median(distances) < 300.0

    def test_empty_regions_rejected(self, rng):
        with pytest.raises(ValueError):
            GeoModel(rng, regions=[])

    def test_zero_weight_regions_rejected(self, rng):
        with pytest.raises(ValueError):
            GeoModel(rng, regions=[Region("z", "ZZ", 0.0, 0.0, weight=0.0)])

    def test_negative_count_rejected(self, geo_model):
        with pytest.raises(ValueError):
            geo_model.sample_positions(-1)

    def test_region_lookup(self, geo_model):
        region = geo_model.region_of("eu-west")
        assert region.country == "DE"
        with pytest.raises(KeyError):
            geo_model.region_of("atlantis")

    def test_deterministic_given_same_rng_seed(self):
        a = GeoModel(np.random.default_rng(3)).sample_positions(10)
        b = GeoModel(np.random.default_rng(3)).sample_positions(10)
        assert [(p.latitude, p.longitude) for p in a] == [(p.latitude, p.longitude) for p in b]
