"""Tests for the Eq. (2)-(4) latency model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.geo import GeoPosition
from repro.net.latency import LatencyModel, LatencyParameters, SIGNAL_SPEED_WIRED_M_S


LONDON = GeoPosition(51.51, -0.13, "uk", "GB")
PARIS = GeoPosition(48.86, 2.35, "france", "FR")
TOKYO = GeoPosition(35.68, 139.69, "japan", "JP")


def make_model(seed=1, **overrides):
    params = LatencyParameters(**overrides) if overrides else LatencyParameters()
    return LatencyModel(np.random.default_rng(seed), params)


class TestParameters:
    def test_defaults_are_valid(self):
        LatencyParameters()

    def test_unstable_queue_rejected(self):
        with pytest.raises(ValueError):
            LatencyParameters(queue_service_rate_bps=10.0, ping_arrival_rate_per_s=1.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            LatencyParameters(congestion_jitter_sigma=-0.1)

    def test_invalid_detour_probability_rejected(self):
        with pytest.raises(ValueError):
            LatencyParameters(detour_probability=1.5)

    def test_inverted_detour_range_rejected(self):
        with pytest.raises(ValueError):
            LatencyParameters(detour_extra_km_range=(500.0, 100.0))

    def test_base_detour_below_one_rejected(self):
        with pytest.raises(ValueError):
            LatencyParameters(base_detour_range=(0.5, 1.5))

    def test_with_overrides_returns_copy(self):
        base = LatencyParameters()
        changed = base.with_overrides(detour_probability=0.0)
        assert changed.detour_probability == 0.0
        assert base.detour_probability != 0.0


class TestEquationComponents:
    def test_transmission_delay_eq2_term(self):
        model = make_model(transmission_rate_bps=1000.0, ping_message_bytes=100.0)
        assert model.transmission_delay_s() == pytest.approx(0.1)

    def test_transmission_delay_for_custom_message(self):
        model = make_model(transmission_rate_bps=1_000_000.0)
        assert model.transmission_delay_s(500_000) == pytest.approx(0.5)

    def test_propagation_delay_eq3(self):
        model = make_model()
        # P = D / S for 1000 km over wired 2/3 c.
        expected = 1_000_000.0 / SIGNAL_SPEED_WIRED_M_S
        assert model.propagation_delay_s(1000.0) == pytest.approx(expected)

    def test_propagation_delay_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            make_model().propagation_delay_s(-1.0)

    def test_queuing_delay_eq4(self):
        model = make_model(
            ping_message_bytes=32.0,
            queue_service_rate_bps=1000.0,
            ping_arrival_rate_per_s=10.0,
        )
        expected = 32.0 / (1000.0 - 10.0 * 32.0)
        assert model.queuing_delay_s() == pytest.approx(expected)


class TestBaseRtt:
    def test_rtt_contains_two_propagation_legs(self):
        model = make_model(
            congestion_jitter_sigma=0.0,
            detour_probability=0.0,
            base_detour_range=(1.0, 1.0),
        )
        rtt = model.base_rtt_s(0, LONDON, 1, PARIS)
        one_way = model.propagation_delay_s(LONDON.distance_km(PARIS))
        expected = model.transmission_delay_s() + 2 * one_way + model.queuing_delay_s()
        assert rtt == pytest.approx(expected)

    def test_rtt_is_deterministic_per_pair(self):
        model = make_model()
        first = model.base_rtt_s(0, LONDON, 1, PARIS)
        second = model.base_rtt_s(0, LONDON, 1, PARIS)
        assert first == second

    def test_rtt_symmetric_in_node_order(self):
        model = make_model()
        assert model.base_rtt_s(0, LONDON, 1, PARIS) == pytest.approx(
            model.base_rtt_s(1, PARIS, 0, LONDON)
        )

    def test_far_pair_has_larger_rtt_than_near_pair(self):
        model = make_model(detour_probability=0.0)
        near = model.base_rtt_s(0, LONDON, 1, PARIS)
        far = model.base_rtt_s(0, LONDON, 2, TOKYO)
        assert far > near

    def test_minimum_rtt_floor(self):
        model = make_model(minimum_rtt_s=0.01, detour_probability=0.0)
        same_place = GeoPosition(51.51, -0.13, "uk", "GB")
        assert model.base_rtt_s(0, LONDON, 1, same_place) >= 0.01


class TestSampling:
    def test_samples_vary_with_jitter(self):
        model = make_model(congestion_jitter_sigma=0.3)
        samples = {model.sample_rtt(0, LONDON, 1, PARIS).rtt_s for _ in range(10)}
        assert len(samples) > 1

    def test_samples_identical_without_jitter(self):
        model = make_model(congestion_jitter_sigma=0.0)
        samples = {model.sample_rtt(0, LONDON, 1, PARIS).rtt_s for _ in range(5)}
        assert len(samples) == 1

    def test_sample_decomposition_consistent(self):
        model = make_model(congestion_jitter_sigma=0.0, detour_probability=0.0)
        sample = model.sample_rtt(0, LONDON, 1, PARIS)
        reconstructed = (
            sample.transmission_s + 2 * sample.propagation_s + sample.queuing_s
        ) * sample.jitter_factor
        assert sample.rtt_s == pytest.approx(max(reconstructed, model.parameters.minimum_rtt_s))

    def test_one_way_delay_scales_with_message_size(self):
        model = make_model(congestion_jitter_sigma=0.0)
        small = model.one_way_delay_s(0, LONDON, 1, PARIS, message_bytes=100, jittered=False)
        large = model.one_way_delay_s(0, LONDON, 1, PARIS, message_bytes=1_000_000, jittered=False)
        assert large > small

    def test_one_way_delay_positive(self):
        model = make_model()
        assert model.one_way_delay_s(0, LONDON, 1, PARIS, message_bytes=100) > 0


class TestDetours:
    def test_detour_assignment_is_persistent(self):
        model = make_model(detour_probability=0.5)
        first = model.pair_has_detour(3, 4)
        for _ in range(5):
            assert model.pair_has_detour(3, 4) == first

    def test_no_detours_when_probability_zero(self):
        model = make_model(detour_probability=0.0)
        assert not any(model.pair_has_detour(i, i + 1) for i in range(50))

    def test_all_detours_when_probability_one(self):
        model = make_model(detour_probability=1.0)
        assert all(model.pair_has_detour(i, i + 1) for i in range(20))

    def test_detoured_pair_has_higher_rtt(self):
        # Force two models identical except detours, compare the same pair.
        no_detour = make_model(seed=5, detour_probability=0.0, congestion_jitter_sigma=0.0)
        all_detour = make_model(seed=5, detour_probability=1.0, congestion_jitter_sigma=0.0)
        assert all_detour.base_rtt_s(0, LONDON, 1, PARIS) > no_detour.base_rtt_s(0, LONDON, 1, PARIS)

    def test_detour_fraction_roughly_matches_probability(self):
        model = make_model(seed=11, detour_probability=0.3)
        detoured = sum(model.pair_has_detour(i, 1000 + i) for i in range(500))
        assert 0.2 <= detoured / 500 <= 0.4

    def test_path_km_at_least_great_circle(self):
        model = make_model()
        for i in range(20):
            assert model.path_km(i, i + 1, 1000.0) >= 1000.0

    @given(distance=st.floats(0.0, 20000.0))
    @settings(max_examples=50, deadline=None)
    def test_path_km_monotone_in_distance_property(self, distance):
        model = make_model(seed=2)
        shorter = model.path_km(1, 2, distance)
        longer = model.path_km(1, 2, distance + 100.0)
        assert longer >= shorter
