"""Tests for the array-backed pair store of :class:`LatencyModel`.

The scale plane (docs/ARCHITECTURE.md) rests on the claim that the array
backend (``node_count=n``) is *byte-identical* to the historical dict backend
for every delay either produces: same routing draws in the same stream order,
same resolved paths, same jitter consumption.  These tests pin that claim
directly — dict and array models fed from identically-seeded generators must
agree bit-for-bit on interleaved workloads — plus the index arithmetic and
the deferred-routing bookkeeping the equivalence depends on.
"""

import numpy as np
import pytest

from repro.net.geo import GeoModel
from repro.net.latency import LatencyModel, LatencyParameters


def sample_positions(count, seed=11):
    """Deterministic node positions shared by both backends."""
    return GeoModel(np.random.default_rng(seed)).sample_positions(count)


def make_pair(node_count=12, seed=3, **overrides):
    """(dict-mode model, array-mode model) fed from identically-seeded rngs."""
    params = LatencyParameters(**overrides) if overrides else LatencyParameters()
    dict_model = LatencyModel(np.random.default_rng(seed), params)
    array_model = LatencyModel(np.random.default_rng(seed), params, node_count=node_count)
    return dict_model, array_model


class TestPairIndex:
    def test_bijection_covers_triangle(self):
        n = 17
        model = LatencyModel(np.random.default_rng(0), node_count=n)
        indices = [
            model._pair_index(a, b) for a in range(n) for b in range(a + 1, n)
        ]
        assert sorted(indices) == list(range(n * (n - 1) // 2))

    def test_order_insensitive(self):
        model = LatencyModel(np.random.default_rng(0), node_count=9)
        for a in range(9):
            for b in range(a + 1, 9):
                assert model._pair_index(a, b) == model._pair_index(b, a)

    def test_self_pair_rejected(self):
        model = LatencyModel(np.random.default_rng(0), node_count=5)
        with pytest.raises(ValueError):
            model._pair_index(3, 3)

    def test_out_of_range_rejected(self):
        model = LatencyModel(np.random.default_rng(0), node_count=5)
        with pytest.raises(ValueError):
            model._pair_index(0, 5)
        with pytest.raises(ValueError):
            model._pair_index(-1, 2)

    def test_node_count_below_two_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(np.random.default_rng(0), node_count=1)


class TestBackendEquivalence:
    def test_interleaved_workload_is_bit_identical(self):
        """The core contract: an interleaved mix of every public query —
        detour peeks, base RTTs, single and batched samples, message delays —
        produces the same bytes from both backends."""
        n = 12
        positions = sample_positions(n)
        dict_model, array_model = make_pair(node_count=n)
        rng = np.random.default_rng(99)  # drives the workload, not the models

        for _ in range(300):
            a, b = rng.choice(n, size=2, replace=False)
            a, b = int(a), int(b)
            op = int(rng.integers(0, 5))
            if op == 0:
                assert dict_model.pair_has_detour(a, b) == array_model.pair_has_detour(a, b)
            elif op == 1:
                assert dict_model.base_rtt_s(
                    a, positions[a], b, positions[b]
                ) == array_model.base_rtt_s(a, positions[a], b, positions[b])
            elif op == 2:
                expected = dict_model.sample_rtt(a, positions[a], b, positions[b])
                actual = array_model.sample_rtt(a, positions[a], b, positions[b])
                assert expected == actual
            elif op == 3:
                count = int(rng.integers(1, 6))
                assert dict_model.sample_rtts(
                    a, positions[a], b, positions[b], count
                ) == array_model.sample_rtts(a, positions[a], b, positions[b], count)
            else:
                assert dict_model.one_way_delay_s(
                    a, positions[a], b, positions[b], 345.0
                ) == array_model.one_way_delay_s(a, positions[a], b, positions[b], 345.0)

    def test_resolved_paths_match_dict_mode(self):
        n = 10
        positions = sample_positions(n)
        dict_model, array_model = make_pair(node_count=n)
        for a in range(n):
            for b in range(a + 1, n):
                km = positions[a].distance_km(positions[b])
                assert dict_model.path_km(a, b, km) == array_model.path_km(a, b, km)

    def test_array_mode_resolves_path_once(self):
        # Positions are immutable for a run, so array mode pins the first
        # resolution; dict mode recomputes from the persistent stretch draw.
        _, array_model = make_pair(node_count=6)
        first = array_model.path_km(0, 1, 1000.0)
        assert array_model.path_km(0, 1, 2000.0) == first

    def test_jitter_factors_match(self):
        dict_model, array_model = make_pair(node_count=6)
        expected = dict_model.jitter_factors(16)
        actual = array_model.jitter_factors(16)
        assert np.array_equal(expected, actual)


class TestDeferredRouting:
    def test_detour_peek_before_resolution_is_stream_exact(self):
        """``pair_has_detour`` on an unresolved pair draws routing immediately
        (same stream position as dict mode) and parks it; the later path
        resolution must consume the parked draw, not a fresh one."""
        n = 8
        positions = sample_positions(n)
        dict_model, array_model = make_pair(node_count=n)

        assert dict_model.pair_has_detour(2, 5) == array_model.pair_has_detour(2, 5)
        # Unresolved peek does not mark the pair as routed...
        assert not array_model.routing_cached(2, 5)
        # ...but the draw is parked and reused: the resolved path and every
        # later draw still line up with dict mode.
        assert dict_model.base_rtt_s(
            2, positions[2], 5, positions[5]
        ) == array_model.base_rtt_s(2, positions[2], 5, positions[5])
        assert array_model.routing_cached(2, 5)
        assert dict_model.pair_has_detour(2, 5) == array_model.pair_has_detour(2, 5)
        assert dict_model.sample_rtts(
            0, positions[0], 7, positions[7], 4
        ) == array_model.sample_rtts(0, positions[0], 7, positions[7], 4)

    def test_repeated_peeks_consume_one_draw(self):
        n = 8
        positions = sample_positions(n)
        dict_model, array_model = make_pair(node_count=n)
        for _ in range(3):
            assert dict_model.pair_has_detour(1, 4) == array_model.pair_has_detour(1, 4)
        assert dict_model.sample_rtt(
            1, positions[1], 4, positions[4]
        ) == array_model.sample_rtt(1, positions[1], 4, positions[4])


class TestRoutingCached:
    @pytest.mark.parametrize("array_backed", [False, True])
    def test_cached_after_first_touch(self, array_backed):
        positions = sample_positions(6)
        model = LatencyModel(
            np.random.default_rng(3),
            LatencyParameters(),
            node_count=6 if array_backed else None,
        )
        assert model.array_backed == array_backed
        assert not model.routing_cached(0, 1)
        model.base_rtt_s(0, positions[0], 1, positions[1])
        assert model.routing_cached(0, 1)
        assert model.routing_cached(1, 0)

    def test_array_footprint_is_compact(self):
        # The point of array mode: 9 bytes per pair, not ~500 of dict overhead.
        n = 100
        model = LatencyModel(np.random.default_rng(0), node_count=n)
        pairs = n * (n - 1) // 2
        assert model._pair_path_km.nbytes == 8 * pairs
        assert model._pair_flags.nbytes == pairs
