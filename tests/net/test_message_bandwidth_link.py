"""Tests for wire-message sizing, the bandwidth model and the link layer."""

import numpy as np
import pytest

from repro.net.bandwidth import AccessClass, BandwidthModel
from repro.net.geo import GeoPosition
from repro.net.latency import LatencyModel, LatencyParameters
from repro.net.link import Link, LinkDelayCalculator
from repro.net.message import (
    ADDR_ENTRY_BYTES,
    BLOCK_HEADER_BYTES,
    BLOCK_TXN_INDEX_BYTES,
    BLOCK_TXN_REQUEST_BYTES,
    HEADER_BYTES,
    INV_ENTRY_BYTES,
    WireMessage,
    message_size_bytes,
)

LONDON = GeoPosition(51.51, -0.13, "uk", "GB")
PARIS = GeoPosition(48.86, 2.35, "france", "FR")


class TestMessageSizes:
    def test_every_size_includes_header(self):
        for command in ("version", "verack", "ping", "pong", "getaddr", "inv", "tx", "block"):
            assert message_size_bytes(command, 1) >= HEADER_BYTES

    def test_inv_scales_with_entry_count(self):
        one = message_size_bytes("inv", 1)
        ten = message_size_bytes("inv", 10)
        assert ten - one == 9 * INV_ENTRY_BYTES

    def test_getdata_matches_inv_sizing(self):
        assert message_size_bytes("getdata", 4) == message_size_bytes("inv", 4)

    def test_addr_scales_with_address_count(self):
        assert message_size_bytes("addr", 10) - message_size_bytes("addr", 1) == 9 * ADDR_ENTRY_BYTES

    def test_tx_uses_transaction_size(self):
        assert message_size_bytes("tx", 500) == HEADER_BYTES + 500

    def test_tx_default_size(self):
        assert message_size_bytes("tx") > HEADER_BYTES

    def test_block_uses_block_size(self):
        assert message_size_bytes("block", 1_000_000) == HEADER_BYTES + 1_000_000

    def test_verack_is_header_only(self):
        assert message_size_bytes("verack") == HEADER_BYTES

    def test_unknown_command_rejected(self):
        with pytest.raises(KeyError):
            message_size_bytes("bogus")

    def test_negative_inventory_rejected(self):
        with pytest.raises(ValueError):
            message_size_bytes("inv", -1)

    def test_non_positive_tx_size_rejected(self):
        with pytest.raises(ValueError):
            message_size_bytes("tx", 0)

    def test_wire_message_rejects_sub_header_size(self):
        with pytest.raises(ValueError):
            WireMessage("inv", HEADER_BYTES - 1)

    def test_cmpctblock_uses_payload_bytes(self):
        assert message_size_bytes("cmpctblock", 500) == HEADER_BYTES + 500
        assert message_size_bytes("cmpctblock") == HEADER_BYTES + BLOCK_HEADER_BYTES

    def test_cmpctblock_smaller_than_header_rejected(self):
        with pytest.raises(ValueError):
            message_size_bytes("cmpctblock", BLOCK_HEADER_BYTES - 1)

    def test_getblocktxn_scales_with_index_count(self):
        one = message_size_bytes("getblocktxn", 1)
        ten = message_size_bytes("getblocktxn", 10)
        assert one == HEADER_BYTES + BLOCK_TXN_REQUEST_BYTES + BLOCK_TXN_INDEX_BYTES
        assert ten - one == 9 * BLOCK_TXN_INDEX_BYTES
        with pytest.raises(ValueError):
            message_size_bytes("getblocktxn", -1)

    def test_blocktxn_uses_transaction_bytes(self):
        assert message_size_bytes("blocktxn", 700) == (
            HEADER_BYTES + BLOCK_TXN_REQUEST_BYTES + 700
        )
        with pytest.raises(ValueError):
            message_size_bytes("blocktxn", -1)

    def test_compact_announcement_is_much_smaller_than_block(self):
        """The whole point of compact relay: header + short ids << full block."""
        block_bytes = 1_000_000
        compact_bytes = BLOCK_HEADER_BYTES + 2000 * 6 + 258
        assert message_size_bytes("cmpctblock", compact_bytes) < (
            message_size_bytes("block", block_bytes) / 50
        )


class TestBandwidthModel:
    def test_assignment_is_persistent(self, rng):
        model = BandwidthModel(rng)
        first = model.assign(7)
        assert model.assign(7) == first

    def test_effective_rate_is_bottleneck(self, rng):
        classes = (
            AccessClass("slow", uplink_bps=100.0, downlink_bps=100.0, weight=1.0),
        )
        model = BandwidthModel(rng, classes=classes)
        assert model.effective_rate_bps(1, 2) == pytest.approx(100.0)

    def test_transmission_delay(self, rng):
        classes = (AccessClass("c", uplink_bps=1000.0, downlink_bps=1000.0, weight=1.0),)
        model = BandwidthModel(rng, classes=classes)
        assert model.transmission_delay_s(1, 2, 500.0) == pytest.approx(0.5)

    def test_negative_size_rejected(self, rng):
        model = BandwidthModel(rng)
        with pytest.raises(ValueError):
            model.transmission_delay_s(1, 2, -1.0)

    def test_empty_class_list_rejected(self, rng):
        with pytest.raises(ValueError):
            BandwidthModel(rng, classes=[])

    def test_invalid_class_rates_rejected(self):
        with pytest.raises(ValueError):
            AccessClass("bad", uplink_bps=0.0, downlink_bps=10.0, weight=1.0)

    def test_class_mix_follows_weights(self):
        rng = np.random.default_rng(5)
        model = BandwidthModel(rng)
        counts = {}
        for node_id in range(2000):
            name = model.assign(node_id).access_class
            counts[name] = counts.get(name, 0) + 1
        # residential-fast has weight 0.40 of the default mix.
        assert 0.3 <= counts.get("residential-fast", 0) / 2000 <= 0.5


class TestLink:
    def test_make_orders_endpoints(self):
        link = Link.make(9, 2, established_at=1.0)
        assert link.key == (2, 9)

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            Link(3, 3, established_at=0.0)

    def test_unordered_construction_rejected(self):
        with pytest.raises(ValueError):
            Link(5, 2, established_at=0.0)

    def test_other_endpoint(self):
        link = Link.make(1, 2, established_at=0.0)
        assert link.other(1) == 2
        assert link.other(2) == 1
        with pytest.raises(ValueError):
            link.other(3)


class TestLinkDelayCalculator:
    def _calculator(self, with_bandwidth=False):
        rng = np.random.default_rng(3)
        latency = LatencyModel(
            rng, LatencyParameters(congestion_jitter_sigma=0.0, detour_probability=0.0)
        )
        bandwidth = BandwidthModel(np.random.default_rng(4)) if with_bandwidth else None
        return LinkDelayCalculator(latency, bandwidth)

    def test_message_delay_positive(self):
        calc = self._calculator()
        assert calc.message_delay_s(0, LONDON, 1, PARIS, "inv", 1) > 0

    def test_larger_messages_take_longer(self):
        calc = self._calculator()
        small = calc.message_delay_s(0, LONDON, 1, PARIS, "tx", 300, jittered=False)
        big = calc.message_delay_s(0, LONDON, 1, PARIS, "block", 1_000_000, jittered=False)
        assert big > small

    def test_bandwidth_model_changes_transmission_component(self):
        flat = self._calculator(with_bandwidth=False)
        heterogeneous = self._calculator(with_bandwidth=True)
        flat_delay = flat.message_delay_s(0, LONDON, 1, PARIS, "block", 500_000, jittered=False)
        hetero_delay = heterogeneous.message_delay_s(
            0, LONDON, 1, PARIS, "block", 500_000, jittered=False
        )
        assert flat_delay != pytest.approx(hetero_delay)

    def test_ping_rtt_close_to_base_rtt_without_jitter(self):
        calc = self._calculator()
        ping = calc.ping_rtt_s(0, LONDON, 1, PARIS)
        base = calc.base_rtt_s(0, LONDON, 1, PARIS)
        assert ping == pytest.approx(base)

    def test_control_message_delay_roughly_half_rtt(self):
        calc = self._calculator()
        delay = calc.message_delay_s(0, LONDON, 1, PARIS, "inv", 1, jittered=False)
        rtt = calc.base_rtt_s(0, LONDON, 1, PARIS)
        assert delay < rtt
        assert delay > rtt / 4
