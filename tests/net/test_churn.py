"""Tests for session lengths and churn-driven join/leave events."""

import numpy as np
import pytest

from repro.net.churn import ChurnModel, SessionLengthModel, SessionParameters
from repro.sim.engine import Simulator


class TestSessionParameters:
    def test_defaults_valid(self):
        SessionParameters()

    def test_invalid_median_rejected(self):
        with pytest.raises(ValueError):
            SessionParameters(median_session_s=0.0)

    def test_invalid_stable_fraction_rejected(self):
        with pytest.raises(ValueError):
            SessionParameters(stable_fraction=1.5)

    def test_negative_downtime_rejected(self):
        with pytest.raises(ValueError):
            SessionParameters(mean_downtime_s=-1.0)


class TestSessionLengthModel:
    def test_stability_assignment_persistent(self, rng):
        model = SessionLengthModel(rng)
        assert all(model.is_stable(5) == model.is_stable(5) for _ in range(5))

    def test_stable_fraction_roughly_matches(self):
        model = SessionLengthModel(
            np.random.default_rng(3), SessionParameters(stable_fraction=0.3)
        )
        stable = sum(model.is_stable(i) for i in range(2000))
        assert 0.25 <= stable / 2000 <= 0.35

    def test_stable_nodes_get_long_sessions(self):
        params = SessionParameters(stable_fraction=1.0, stable_session_s=1000.0)
        model = SessionLengthModel(np.random.default_rng(1), params)
        assert model.sample_session_s(0) == pytest.approx(1000.0)

    def test_session_lengths_heavy_tailed(self):
        params = SessionParameters(stable_fraction=0.0, median_session_s=3600.0, sigma=1.4)
        model = SessionLengthModel(np.random.default_rng(2), params)
        samples = [model.sample_session_s(i) for i in range(3000)]
        median = float(np.median(samples))
        mean = float(np.mean(samples))
        assert 2000.0 <= median <= 6000.0
        assert mean > median  # right-skewed

    def test_zero_downtime_supported(self):
        params = SessionParameters(mean_downtime_s=0.0)
        model = SessionLengthModel(np.random.default_rng(1), params)
        assert model.sample_downtime_s(0) == 0.0

    def test_sessions_positive(self, rng):
        model = SessionLengthModel(rng)
        assert all(model.sample_session_s(i) > 0 for i in range(50))


class TestChurnModel:
    def _run_churn(self, horizon_s, params=None):
        simulator = Simulator(seed=7)
        model = SessionLengthModel(
            simulator.random.stream("sessions"),
            params
            or SessionParameters(
                median_session_s=10.0, sigma=0.5, stable_fraction=0.0, mean_downtime_s=5.0
            ),
        )
        events = []
        churn = ChurnModel(
            simulator,
            model,
            on_leave=lambda n: events.append(("leave", n, simulator.now)),
            on_join=lambda n: events.append(("join", n, simulator.now)),
        )
        for node_id in range(5):
            churn.start_node(node_id)
        simulator.run(until=horizon_s)
        return churn, events

    def test_nodes_leave_and_rejoin(self):
        churn, events = self._run_churn(200.0)
        assert churn.leave_events > 0
        assert churn.join_events > 0
        kinds = {kind for kind, _, _ in events}
        assert kinds == {"leave", "join"}

    def test_leave_precedes_rejoin_per_node(self):
        _, events = self._run_churn(200.0)
        per_node: dict[int, list[str]] = {}
        for kind, node, _ in events:
            per_node.setdefault(node, []).append(kind)
        for sequence in per_node.values():
            # Alternating sequence starting with a leave.
            for index, kind in enumerate(sequence):
                assert kind == ("leave" if index % 2 == 0 else "join")

    def test_online_tracking(self):
        churn, _ = self._run_churn(200.0)
        online = churn.online_nodes()
        for node_id in range(5):
            assert churn.is_online(node_id) == (node_id in online)

    def test_double_start_rejected(self):
        simulator = Simulator(seed=1)
        model = SessionLengthModel(simulator.random.stream("sessions"))
        churn = ChurnModel(simulator, model, on_leave=lambda n: None, on_join=lambda n: None)
        churn.start_node(1)
        with pytest.raises(ValueError):
            churn.start_node(1)

    def test_no_events_before_first_session_ends(self):
        params = SessionParameters(
            median_session_s=1e6, sigma=0.1, stable_fraction=0.0, mean_downtime_s=1.0
        )
        simulator = Simulator(seed=7)
        model = SessionLengthModel(simulator.random.stream("sessions"), params)
        churn = ChurnModel(simulator, model, on_leave=lambda n: None, on_join=lambda n: None)
        churn.start_node(0)
        simulator.run(until=100.0)
        assert churn.leave_events == 0
