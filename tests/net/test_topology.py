"""Tests for the overlay topology graph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.link import Link
from repro.net.topology import OverlayTopology


def make_topology(max_connections=None):
    topology = OverlayTopology(max_connections=max_connections)
    for node_id in range(6):
        topology.add_node(node_id)
    return topology


class TestNodes:
    def test_add_and_count_nodes(self):
        topology = make_topology()
        assert topology.node_count == 6
        assert topology.has_node(0)
        assert not topology.has_node(99)

    def test_add_node_idempotent(self):
        topology = make_topology()
        topology.add_node(0)
        assert topology.node_count == 6

    def test_remove_node_returns_links(self):
        topology = make_topology()
        topology.connect(Link.make(0, 1, 0.0))
        topology.connect(Link.make(0, 2, 0.0))
        removed = topology.remove_node(0)
        assert len(removed) == 2
        assert topology.link_count == 0
        assert not topology.has_node(0)

    def test_remove_unknown_node_is_noop(self):
        topology = make_topology()
        assert topology.remove_node(99) == []

    def test_contains_operator(self):
        topology = make_topology()
        assert 3 in topology
        assert 99 not in topology


class TestLinks:
    def test_connect_and_query(self):
        topology = make_topology()
        topology.connect(Link.make(0, 1, 0.0))
        assert topology.are_connected(0, 1)
        assert topology.are_connected(1, 0)
        assert topology.link_count == 1
        assert topology.degree(0) == 1

    def test_duplicate_connection_rejected(self):
        topology = make_topology()
        topology.connect(Link.make(0, 1, 0.0))
        with pytest.raises(ValueError):
            topology.connect(Link.make(1, 0, 1.0))

    def test_connection_limit_enforced(self):
        topology = make_topology(max_connections=2)
        topology.connect(Link.make(0, 1, 0.0))
        topology.connect(Link.make(0, 2, 0.0))
        with pytest.raises(ValueError):
            topology.connect(Link.make(0, 3, 0.0))
        assert not topology.can_accept(0)
        assert topology.can_accept(3)

    def test_invalid_connection_limit_rejected(self):
        with pytest.raises(ValueError):
            OverlayTopology(max_connections=0)

    def test_disconnect_returns_link(self):
        topology = make_topology()
        original = Link.make(0, 1, 0.0, is_long_link=True)
        topology.connect(original)
        removed = topology.disconnect(1, 0)
        assert removed is original
        assert not topology.are_connected(0, 1)

    def test_disconnect_missing_returns_none(self):
        topology = make_topology()
        assert topology.disconnect(0, 1) is None

    def test_link_lookup(self):
        topology = make_topology()
        topology.connect(Link.make(2, 4, 3.0, is_cluster_link=True))
        link = topology.link(4, 2)
        assert link.is_cluster_link
        with pytest.raises(KeyError):
            topology.link(0, 5)

    def test_neighbors_listing(self):
        topology = make_topology()
        topology.connect(Link.make(0, 1, 0.0))
        topology.connect(Link.make(0, 3, 0.0))
        assert sorted(topology.neighbors(0)) == [1, 3]
        assert topology.neighbors(99) == []

    def test_degree_of_unknown_node_is_zero(self):
        topology = make_topology()
        assert topology.degree(99) == 0


class TestAnalysis:
    def test_connectivity_detection(self):
        topology = make_topology()
        for i in range(5):
            topology.connect(Link.make(i, i + 1, 0.0))
        assert topology.is_connected()

    def test_disconnected_components(self):
        topology = make_topology()
        topology.connect(Link.make(0, 1, 0.0))
        topology.connect(Link.make(2, 3, 0.0))
        components = topology.connected_components()
        assert len(components) == 4  # {0,1}, {2,3}, {4}, {5}

    def test_empty_topology_is_connected(self):
        assert OverlayTopology().is_connected()

    def test_average_degree(self):
        topology = make_topology()
        topology.connect(Link.make(0, 1, 0.0))
        topology.connect(Link.make(2, 3, 0.0))
        assert topology.average_degree() == pytest.approx(4 / 6)

    def test_average_degree_empty(self):
        assert OverlayTopology().average_degree() == 0.0

    def test_average_shortest_path_on_chain(self):
        topology = make_topology()
        for i in range(5):
            topology.connect(Link.make(i, i + 1, 0.0))
        assert topology.average_shortest_path_length() > 1.0

    def test_snapshot_is_a_copy(self):
        topology = make_topology()
        topology.connect(Link.make(0, 1, 0.0))
        graph = topology.snapshot()
        graph.remove_edge(0, 1)
        assert topology.are_connected(0, 1)

    @given(edges=st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_degree_sum_equals_twice_links_property(self, edges):
        topology = OverlayTopology(max_connections=None)
        for node in range(16):
            topology.add_node(node)
        for a, b in edges:
            if a != b and not topology.are_connected(a, b):
                topology.connect(Link.make(a, b, 0.0))
        total_degree = sum(topology.degree(n) for n in range(16))
        assert total_degree == 2 * topology.link_count
