"""End-to-end integration tests crossing all layers.

These exercise the full pipeline (network construction -> clustering policy ->
funding -> measuring-node campaign -> statistics) at a moderate scale and
check the *qualitative* claims of the paper; the full-size reproduction runs
in ``benchmarks/``.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_protocol_comparison
from repro.measurement.measuring_node import MeasurementCampaign, MeasuringNode
from repro.net.churn import SessionLengthModel, SessionParameters
from repro.core.maintenance import ChurnMaintainer
from repro.workloads.generators import fund_nodes
from repro.workloads.network_gen import NetworkParameters
from repro.workloads.scenarios import build_scenario


CONFIG = ExperimentConfig(
    node_count=120, runs=6, seeds=(3,), measuring_nodes=3, run_timeout_s=30.0
)


@pytest.fixture(scope="module")
def comparison_results():
    """One moderate-scale three-way comparison shared by the ordering tests."""
    return run_protocol_comparison(("bitcoin", "lbc", "bcbpt"), CONFIG)


class TestPaperClaims:
    def test_bcbpt_beats_bitcoin_in_mean_delay(self, comparison_results):
        bcbpt = comparison_results["bcbpt"].summary()
        bitcoin = comparison_results["bitcoin"].summary()
        assert bcbpt["mean_s"] < bitcoin["mean_s"]

    def test_bcbpt_beats_bitcoin_in_variance(self, comparison_results):
        bcbpt = comparison_results["bcbpt"].summary()
        bitcoin = comparison_results["bitcoin"].summary()
        assert bcbpt["variance_s2"] < bitcoin["variance_s2"]

    def test_lbc_sits_between_bitcoin_and_bcbpt(self, comparison_results):
        """Both clustering protocols clearly beat Bitcoin; BCBPT is at least as
        good as LBC in mean (statistically tied at this reduced scale) and
        strictly better in variance.  The strict three-way mean ordering is
        asserted at full benchmark scale in ``benchmarks/test_bench_fig3.py``."""
        means = {name: r.summary()["mean_s"] for name, r in comparison_results.items()}
        variances = {name: r.summary()["variance_s2"] for name, r in comparison_results.items()}
        assert means["lbc"] < means["bitcoin"]
        assert means["bcbpt"] <= means["lbc"] * 1.1
        assert variances["bcbpt"] < variances["lbc"] < variances["bitcoin"]

    def test_bitcoin_variance_grows_with_connection_rank(self, comparison_results):
        """The paper: Bitcoin's delay variance grows with the number of
        connected nodes, BCBPT's stays comparatively flat."""
        bitcoin_curve = dict(comparison_results["bitcoin"].rank_variance_curve())
        bcbpt_curve = dict(comparison_results["bcbpt"].rank_variance_curve())
        shared_ranks = sorted(set(bitcoin_curve) & set(bcbpt_curve))
        assert len(shared_ranks) >= 4
        late = shared_ranks[len(shared_ranks) // 2 :]
        early = shared_ranks[: len(shared_ranks) // 2]
        bitcoin_growth = (
            sum(bitcoin_curve[r] for r in late) / len(late)
            - sum(bitcoin_curve[r] for r in early) / len(early)
        )
        # Bitcoin's variance rises appreciably from early to late ranks, and at
        # every shared rank BCBPT stays well below Bitcoin.
        assert bitcoin_growth > 0
        assert all(bcbpt_curve[r] < bitcoin_curve[r] for r in shared_ranks)

    def test_full_coverage_reached(self, comparison_results):
        for result in comparison_results.values():
            for campaign in result.campaigns:
                assert campaign.coverage() > 0.95


class TestEndToEndUnderChurn:
    def test_measurement_still_works_with_churn(self):
        scenario = build_scenario(
            "bcbpt", NetworkParameters(node_count=60, seed=19), latency_threshold_s=0.025
        )
        simulated = scenario.network
        fund_nodes(list(simulated.nodes.values()), outputs_per_node=6)
        maintainer = ChurnMaintainer(
            simulated.simulator,
            simulated.network,
            scenario.policy,
            simulated.seed_service,
            SessionLengthModel(
                simulated.simulator.random.stream("sessions"),
                SessionParameters(
                    median_session_s=120.0, sigma=0.8, stable_fraction=0.3, mean_downtime_s=30.0
                ),
            ),
            discovery_interval_s=10.0,
        )
        maintainer.start()
        # Pick a stable measuring node so it does not churn away mid-campaign.
        measuring_id = next(
            node_id
            for node_id in simulated.node_ids()
            if maintainer.churn._sessions.is_stable(node_id)
        )
        measuring = MeasuringNode(
            simulated.node(measuring_id),
            simulated.simulator.random.stream("measure"),
            exclude_long_links=True,
            run_timeout_s=30.0,
        )
        result = MeasurementCampaign(measuring, "bcbpt-churn").run(4)
        assert result.run_count == 4
        assert len(result.delays) > 0
        # Churn means some connections may drop mid-run; most must still arrive.
        assert result.coverage() > 0.6
