"""Tests for periodic timers and the tracer."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import Tracer


class TestPeriodicTimer:
    def test_fires_repeatedly(self, simulator):
        ticks = []
        timer = PeriodicTimer(simulator, 1.0, lambda: ticks.append(simulator.now))
        timer.start()
        simulator.run(until=5.5)
        assert ticks == [pytest.approx(t) for t in (1.0, 2.0, 3.0, 4.0, 5.0)]
        assert timer.fired == 5

    def test_custom_start_delay(self, simulator):
        ticks = []
        timer = PeriodicTimer(
            simulator, 2.0, lambda: ticks.append(simulator.now), start_delay=0.5
        )
        timer.start()
        simulator.run(until=5.0)
        assert ticks[0] == pytest.approx(0.5)
        assert ticks[1] == pytest.approx(2.5)

    def test_stop_prevents_future_firings(self, simulator):
        ticks = []
        timer = PeriodicTimer(simulator, 1.0, lambda: ticks.append(simulator.now))
        timer.start()
        simulator.schedule(2.5, timer.stop)
        simulator.run(until=10.0)
        assert len(ticks) == 2
        assert not timer.running

    def test_stop_is_idempotent(self, simulator):
        timer = PeriodicTimer(simulator, 1.0, lambda: None)
        timer.start()
        timer.stop()
        timer.stop()
        assert not timer.running

    def test_double_start_rejected(self, simulator):
        timer = PeriodicTimer(simulator, 1.0, lambda: None)
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_jitter_requires_rng(self, simulator):
        with pytest.raises(ValueError):
            PeriodicTimer(simulator, 1.0, lambda: None, jitter=0.2)

    def test_jittered_intervals_vary_but_stay_bounded(self, simulator):
        ticks = []
        timer = PeriodicTimer(
            simulator,
            1.0,
            lambda: ticks.append(simulator.now),
            jitter=0.3,
            rng=simulator.random.stream("jitter"),
        )
        timer.start()
        simulator.run(until=20.0)
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(0.7 - 1e-9 <= gap <= 1.3 + 1e-9 for gap in gaps)
        assert len(set(round(g, 6) for g in gaps)) > 1

    def test_invalid_interval_rejected(self, simulator):
        with pytest.raises(ValueError):
            PeriodicTimer(simulator, 0.0, lambda: None)

    def test_invalid_jitter_rejected(self, simulator):
        with pytest.raises(ValueError):
            PeriodicTimer(
                simulator, 1.0, lambda: None, jitter=1.5, rng=simulator.random.stream("j")
            )


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "message", "inv")
        assert len(tracer) == 0

    def test_enabled_tracer_records(self):
        tracer = Tracer(enabled=True)
        tracer.record(1.0, "message", "inv", detail=(1, 2))
        assert tracer.count() == 1
        record = tracer.records()[0]
        assert record.time == 1.0
        assert record.category == "message"
        assert record.subject == "inv"
        assert record.detail == (1, 2)

    def test_category_filtering_on_record(self):
        tracer = Tracer(enabled=True, categories=["message"])
        tracer.record(1.0, "message", "inv")
        tracer.record(2.0, "churn", "leave")
        assert tracer.count() == 1
        assert tracer.count("message") == 1
        assert tracer.count("churn") == 0

    def test_records_filtered_by_category(self):
        tracer = Tracer(enabled=True)
        tracer.record(1.0, "a", "x")
        tracer.record(2.0, "b", "y")
        assert [r.subject for r in tracer.records("b")] == ["y"]

    def test_clear_empties_tracer(self):
        tracer = Tracer(enabled=True)
        tracer.record(1.0, "a", "x")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.count("a") == 0

    def test_simulator_tracer_wired_in(self):
        simulator = Simulator(seed=1, trace=True)
        simulator.tracer.record(simulator.now, "test", "subject")
        assert simulator.tracer.count("test") == 1
