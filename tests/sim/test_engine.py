"""Tests for the discrete-event engine: scheduling, ordering, processes."""

import pytest

from repro.sim.engine import Simulator, StopSimulation
from repro.sim.events import EventPriority
from repro.sim.process import Timeout, WaitEvent


class TestScheduling:
    def test_events_run_in_time_order(self, simulator):
        order = []
        simulator.schedule(2.0, lambda: order.append("late"))
        simulator.schedule(1.0, lambda: order.append("early"))
        simulator.run()
        assert order == ["early", "late"]

    def test_clock_advances_to_event_time(self, simulator):
        simulator.schedule(3.25, lambda: None)
        end = simulator.run()
        assert end == pytest.approx(3.25)
        assert simulator.now == pytest.approx(3.25)

    def test_same_time_events_run_in_schedule_order(self, simulator):
        order = []
        for i in range(5):
            simulator.schedule(1.0, lambda i=i: order.append(i))
        simulator.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self, simulator):
        order = []
        simulator.schedule(1.0, lambda: order.append("normal"), priority=EventPriority.NORMAL)
        simulator.schedule(1.0, lambda: order.append("urgent"), priority=EventPriority.URGENT)
        simulator.run()
        assert order == ["urgent", "normal"]

    def test_negative_delay_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        with pytest.raises(ValueError):
            simulator.schedule_at(0.5, lambda: None)

    def test_call_soon_runs_at_current_time(self, simulator):
        times = []
        simulator.schedule(2.0, lambda: simulator.call_soon(lambda: times.append(simulator.now)))
        simulator.run()
        assert times == [pytest.approx(2.0)]

    def test_events_executed_counter(self, simulator):
        for _ in range(7):
            simulator.schedule(1.0, lambda: None)
        simulator.run()
        assert simulator.events_executed == 7

    def test_run_until_stops_before_later_events(self, simulator):
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(10.0, lambda: fired.append(10))
        simulator.run(until=5.0)
        assert fired == [1]
        assert simulator.now == pytest.approx(5.0)

    def test_run_until_can_resume(self, simulator):
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(10.0, lambda: fired.append(10))
        simulator.run(until=5.0)
        simulator.run(until=20.0)
        assert fired == [1, 10]

    def test_run_until_advances_clock_when_no_events(self, simulator):
        simulator.run(until=42.0)
        assert simulator.now == pytest.approx(42.0)

    def test_max_events_stops_early(self, simulator):
        for _ in range(100):
            simulator.schedule(1.0, lambda: None)
        simulator.run(max_events=10)
        assert simulator.events_executed == 10

    def test_events_can_schedule_more_events(self, simulator):
        results = []

        def chain(depth):
            results.append(depth)
            if depth < 5:
                simulator.schedule(1.0, lambda: chain(depth + 1))

        simulator.schedule(1.0, lambda: chain(1))
        simulator.run()
        assert results == [1, 2, 3, 4, 5]
        assert simulator.now == pytest.approx(5.0)

    def test_stop_simulation_exception_halts_run(self, simulator):
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))

        def stopper():
            raise StopSimulation()

        simulator.schedule(2.0, stopper)
        simulator.schedule(3.0, lambda: fired.append(3))
        simulator.run()
        assert fired == [1]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, simulator):
        fired = []
        handle = simulator.schedule(1.0, lambda: fired.append(1))
        assert handle.cancel() is True
        simulator.run()
        assert fired == []

    def test_cancel_twice_returns_false(self, simulator):
        handle = simulator.schedule(1.0, lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False

    def test_handle_reports_time_and_state(self, simulator):
        handle = simulator.schedule(2.5, lambda: None, label="probe")
        assert handle.time == pytest.approx(2.5)
        assert handle.label == "probe"
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled


class TestProcesses:
    def test_process_with_timeouts(self, simulator):
        timeline = []

        def worker():
            timeline.append(simulator.now)
            yield Timeout(1.0)
            timeline.append(simulator.now)
            yield Timeout(2.0)
            timeline.append(simulator.now)

        simulator.spawn(worker(), name="worker")
        simulator.run()
        assert timeline == [pytest.approx(0.0), pytest.approx(1.0), pytest.approx(3.0)]

    def test_process_yielding_plain_number(self, simulator):
        ticks = []

        def worker():
            yield 0.5
            ticks.append(simulator.now)

        simulator.spawn(worker())
        simulator.run()
        assert ticks == [pytest.approx(0.5)]

    def test_process_result_captured(self, simulator):
        def worker():
            yield Timeout(1.0)
            return "done"

        process = simulator.spawn(worker())
        simulator.run()
        assert not process.alive
        assert process.result == "done"

    def test_process_wait_event_receives_value(self, simulator):
        received = []
        gate = WaitEvent("gate")

        def waiter():
            value = yield gate
            received.append((simulator.now, value))

        simulator.spawn(waiter())
        simulator.schedule(4.0, lambda: gate.trigger("payload"))
        simulator.run()
        assert received == [(pytest.approx(4.0), "payload")]

    def test_multiple_waiters_all_resume(self, simulator):
        resumed = []
        gate = WaitEvent()

        def waiter(tag):
            yield gate
            resumed.append(tag)

        simulator.spawn(waiter("a"))
        simulator.spawn(waiter("b"))
        simulator.schedule(1.0, gate.trigger)
        simulator.run()
        assert sorted(resumed) == ["a", "b"]

    def test_killed_process_stops(self, simulator):
        ticks = []

        def worker():
            while True:
                yield Timeout(1.0)
                ticks.append(simulator.now)

        process = simulator.spawn(worker())
        simulator.schedule(3.5, process.kill)
        simulator.run(until=10.0)
        assert len(ticks) == 3

    def test_unsupported_yield_raises(self, simulator):
        def worker():
            yield "not a timeout"

        simulator.spawn(worker())
        with pytest.raises(TypeError):
            simulator.run()

    def test_wait_event_cannot_trigger_twice(self):
        gate = WaitEvent()
        gate.trigger()
        with pytest.raises(RuntimeError):
            gate.trigger()


class TestDeterminism:
    def test_same_seed_same_stream(self):
        sim_a, sim_b = Simulator(seed=9), Simulator(seed=9)
        draws_a = sim_a.random.stream("x").random(5).tolist()
        draws_b = sim_b.random.stream("x").random(5).tolist()
        assert draws_a == draws_b

    def test_different_streams_are_independent(self):
        simulator = Simulator(seed=9)
        a = simulator.random.stream("a").random(5).tolist()
        b = simulator.random.stream("b").random(5).tolist()
        assert a != b

    def test_stream_creation_order_does_not_matter(self):
        sim_a, sim_b = Simulator(seed=9), Simulator(seed=9)
        sim_a.random.stream("first")
        a = sim_a.random.stream("target").random(3).tolist()
        b = sim_b.random.stream("target").random(3).tolist()
        assert a == b

    def test_fork_gives_reproducible_child(self):
        sim_a, sim_b = Simulator(seed=9), Simulator(seed=9)
        a = sim_a.random.fork("child").stream("x").random(3).tolist()
        b = sim_b.random.fork("child").stream("x").random(3).tolist()
        assert a == b
