"""Tests for the simulation clock."""

import pytest

from repro.sim.clock import SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_to_same_time_allowed(self):
        clock = SimClock()
        clock.advance_to(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_backwards_rejected(self):
        clock = SimClock()
        clock.advance_to(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_reset_returns_to_start(self):
        clock = SimClock()
        clock.advance_to(100.0)
        clock.reset()
        assert clock.now == 0.0

    def test_reset_to_custom_start(self):
        clock = SimClock()
        clock.advance_to(100.0)
        clock.reset(50.0)
        assert clock.now == 50.0

    def test_reset_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.reset(-5.0)
