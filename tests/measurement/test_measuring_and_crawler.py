"""Tests for the measuring node (Fig. 2 methodology) and the crawler."""

import pytest

from repro.measurement.crawler import NetworkCrawler
from repro.measurement.measuring_node import MeasurementCampaign, MeasuringNode
from repro.workloads.generators import fund_nodes
from repro.workloads.network_gen import NetworkParameters, build_network
from repro.workloads.scenarios import build_scenario


@pytest.fixture(scope="module")
def measured_scenario():
    """A funded BCBPT scenario reused by the measurement tests (module scope
    keeps the suite fast; each test uses fresh transactions)."""
    scenario = build_scenario(
        "bcbpt", NetworkParameters(node_count=40, seed=5), latency_threshold_s=0.025
    )
    fund_nodes(list(scenario.network.nodes.values()), outputs_per_node=30)
    return scenario


class TestMeasuringNode:
    def test_single_run_records_all_connections(self, measured_scenario):
        scenario = measured_scenario
        node = scenario.network.node(0)
        measuring = MeasuringNode(node, scenario.simulator.random.stream("m1"))
        run = measuring.measure_once()
        assert run.connected_nodes == tuple(sorted(node.neighbors()))
        assert run.complete
        assert run.coverage == 1.0
        assert all(record.delta_t_s >= 0 for record in run.receptions)

    def test_first_recipient_is_a_connection(self, measured_scenario):
        scenario = measured_scenario
        node = scenario.network.node(0)
        measuring = MeasuringNode(node, scenario.simulator.random.stream("m2"))
        run = measuring.measure_once()
        assert run.first_recipient in run.connected_nodes

    def test_first_recipient_receives_before_most_others(self, measured_scenario):
        scenario = measured_scenario
        node = scenario.network.node(0)
        measuring = MeasuringNode(node, scenario.simulator.random.stream("m3"))
        run = measuring.measure_once()
        direct_delay = run.delay_of(run.first_recipient)
        later_delays = [r.delta_t_s for r in run.receptions if r.node_id != run.first_recipient]
        assert direct_delay is not None
        assert direct_delay <= sorted(later_delays)[len(later_delays) // 2]

    def test_exclude_long_links_shrinks_measured_set(self, measured_scenario):
        scenario = measured_scenario
        network = scenario.network.network
        node_id = next(
            n
            for n in scenario.network.node_ids()
            if any(network.topology.link(n, p).is_long_link for p in network.neighbors(n))
        )
        node = scenario.network.node(node_id)
        include = MeasuringNode(node, scenario.simulator.random.stream("m4"))
        exclude = MeasuringNode(
            node, scenario.simulator.random.stream("m5"), exclude_long_links=True
        )
        assert len(exclude._measured_connections()) < len(include._measured_connections())

    def test_successive_runs_use_fresh_transactions(self, measured_scenario):
        scenario = measured_scenario
        node = scenario.network.node(1)
        measuring = MeasuringNode(node, scenario.simulator.random.stream("m6"))
        first = measuring.measure_once(0)
        second = measuring.measure_once(1)
        assert first.txid != second.txid
        assert second.coverage == 1.0

    def test_invalid_parameters_rejected(self, measured_scenario):
        node = measured_scenario.network.node(2)
        rng = measured_scenario.simulator.random.stream("m7")
        with pytest.raises(ValueError):
            MeasuringNode(node, rng, payment_satoshi=0)
        with pytest.raises(ValueError):
            MeasuringNode(node, rng, run_timeout_s=0)

    def test_unconnected_node_rejected(self):
        simulated = build_network(NetworkParameters(node_count=10, seed=2))
        fund_nodes(list(simulated.nodes.values()))
        measuring = MeasuringNode(simulated.node(0), simulated.simulator.random.stream("m"))
        with pytest.raises(RuntimeError):
            measuring.measure_once()


class TestMeasurementCampaign:
    def test_campaign_aggregates_runs(self, measured_scenario):
        scenario = measured_scenario
        node = scenario.network.node(3)
        measuring = MeasuringNode(node, scenario.simulator.random.stream("c1"))
        campaign = MeasurementCampaign(measuring, "bcbpt", inter_run_gap_s=1.0)
        result = campaign.run(3)
        assert result.run_count == 3
        assert result.protocol == "bcbpt"
        expected_samples = sum(len(run.receptions) for run in result.runs)
        assert len(result.delays) == expected_samples
        assert result.coverage() == pytest.approx(1.0)

    def test_per_rank_distributions(self, measured_scenario):
        scenario = measured_scenario
        node = scenario.network.node(4)
        measuring = MeasuringNode(node, scenario.simulator.random.stream("c2"))
        result = MeasurementCampaign(measuring, "bcbpt").run(3)
        assert 1 in result.per_rank_delays
        assert len(result.per_rank_delays[1]) == 3
        mean_curve = result.rank_mean_curve()
        assert mean_curve[0][0] == 1
        # Later ranks receive later on average.
        assert mean_curve[-1][1] >= mean_curve[0][1]

    def test_invalid_repetitions_rejected(self, measured_scenario):
        node = measured_scenario.network.node(5)
        measuring = MeasuringNode(node, measured_scenario.simulator.random.stream("c3"))
        with pytest.raises(ValueError):
            MeasurementCampaign(measuring, "x").run(0)

    def test_negative_gap_rejected(self, measured_scenario):
        node = measured_scenario.network.node(6)
        measuring = MeasuringNode(node, measured_scenario.simulator.random.stream("c4"))
        with pytest.raises(ValueError):
            MeasurementCampaign(measuring, "x", inter_run_gap_s=-1.0)


class TestCrawler:
    def test_crawl_reports_rtt_distribution(self, small_network):
        crawler = NetworkCrawler(small_network.network, small_network.simulator.random.stream("c"))
        report = crawler.crawl(ping_samples=500)
        assert report.reachable_nodes == 30
        assert report.ping_samples == 500
        assert len(report.rtt_distribution) == 500
        assert report.rtt_distribution.minimum() > 0

    def test_intra_region_faster_than_inter_region(self, small_network):
        crawler = NetworkCrawler(small_network.network, small_network.simulator.random.stream("c"))
        report = crawler.crawl(ping_samples=2000)
        assert report.intra_region_median_s < report.inter_region_median_s

    def test_crawl_charges_ping_traffic(self, small_network):
        network = small_network.network
        before = network.messages_sent.get("ping", 0)
        NetworkCrawler(network, small_network.simulator.random.stream("c")).crawl(100)
        assert network.messages_sent["ping"] == before + 100

    def test_invalid_sample_count_rejected(self, small_network):
        crawler = NetworkCrawler(small_network.network, small_network.simulator.random.stream("c"))
        with pytest.raises(ValueError):
            crawler.crawl(0)

    def test_needs_two_online_nodes(self):
        simulated = build_network(NetworkParameters(node_count=2, seed=1))
        simulated.network.set_online(1, False)
        crawler = NetworkCrawler(simulated.network, simulated.simulator.random.stream("c"))
        with pytest.raises(ValueError):
            crawler.crawl(10)
