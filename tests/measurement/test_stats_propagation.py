"""Tests for delay statistics and propagation-run records."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurement.propagation import PropagationRun, ReceptionRecord
from repro.measurement.stats import DelayDistribution, summarize_delays


class TestDelayDistribution:
    def test_empty_distribution(self):
        dist = DelayDistribution()
        assert len(dist) == 0
        assert not dist
        with pytest.raises(ValueError):
            dist.mean()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DelayDistribution([-0.1])

    def test_basic_statistics(self):
        dist = DelayDistribution([1.0, 2.0, 3.0, 4.0])
        assert dist.mean() == pytest.approx(2.5)
        assert dist.median() == pytest.approx(2.5)
        assert dist.minimum() == 1.0
        assert dist.maximum() == 4.0
        assert dist.variance() == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
        assert dist.std() == pytest.approx(np.sqrt(dist.variance()))

    def test_single_sample_has_zero_variance(self):
        assert DelayDistribution([0.5]).variance() == 0.0

    def test_percentiles(self):
        dist = DelayDistribution(list(np.linspace(0.0, 1.0, 101)))
        assert dist.percentile(50) == pytest.approx(0.5, abs=0.02)
        assert dist.percentile(90) == pytest.approx(0.9, abs=0.02)
        with pytest.raises(ValueError):
            dist.percentile(120)

    def test_cdf_monotone_and_bounded(self):
        dist = DelayDistribution([0.1, 0.2, 0.4, 0.8])
        fractions = dist.cdf([0.0, 0.1, 0.3, 1.0])
        assert fractions == sorted(fractions)
        assert fractions[0] == 0.0 or fractions[0] >= 0.0
        assert fractions[-1] == 1.0

    def test_cdf_curve_resolution(self):
        dist = DelayDistribution([0.1, 0.2, 0.3])
        curve = dist.cdf_curve(resolution=10)
        assert len(curve) == 10
        assert curve[-1][1] == pytest.approx(1.0)
        with pytest.raises(ValueError):
            dist.cdf_curve(resolution=1)

    def test_merge_keeps_both_sets(self):
        a = DelayDistribution([1.0, 2.0])
        b = DelayDistribution([3.0])
        merged = a.merge(b)
        assert len(merged) == 3
        assert len(a) == 2

    def test_summary_keys(self):
        summary = DelayDistribution([0.1, 0.2, 0.3]).summary()
        for key in ("count", "mean_s", "median_s", "variance_s2", "p90_s", "max_s"):
            assert key in summary

    def test_summarize_delays_skips_empty(self):
        result = summarize_delays({"a": DelayDistribution([1.0]), "b": DelayDistribution()})
        assert "a" in result and "b" not in result

    @given(samples=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_summary_invariants_property(self, samples):
        dist = DelayDistribution(samples)
        assert dist.minimum() <= dist.median() <= dist.maximum()
        assert dist.minimum() <= dist.mean() <= dist.maximum()
        assert dist.variance() >= 0.0
        assert dist.percentile(25) <= dist.percentile(75)

    @given(
        first=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=20),
        second=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_count_property(self, first, second):
        merged = DelayDistribution(first).merge(DelayDistribution(second))
        assert len(merged) == len(first) + len(second)


class TestReceptionRecord:
    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            ReceptionRecord(node_id=1, received_at=1.0, delta_t_s=-0.1, rank=1)

    def test_rank_starts_at_one(self):
        with pytest.raises(ValueError):
            ReceptionRecord(node_id=1, received_at=1.0, delta_t_s=0.1, rank=0)


class TestPropagationRun:
    def _run(self):
        return PropagationRun(
            run_index=0,
            txid="tx",
            sent_at=10.0,
            first_recipient=1,
            connected_nodes=(1, 2, 3),
        )

    def test_record_reception_computes_delta_and_rank(self):
        run = self._run()
        record = run.record_reception(2, 10.5)
        assert record.delta_t_s == pytest.approx(0.5)
        assert record.rank == 1
        second = run.record_reception(3, 11.0)
        assert second.rank == 2

    def test_duplicate_reception_ignored(self):
        run = self._run()
        run.record_reception(2, 10.5)
        assert run.record_reception(2, 12.0) is None
        assert len(run.receptions) == 1

    def test_unknown_node_ignored(self):
        run = self._run()
        assert run.record_reception(99, 10.5) is None

    def test_completion_and_coverage(self):
        run = self._run()
        assert run.coverage == 0.0
        for node, at in ((1, 10.1), (2, 10.2), (3, 10.3)):
            run.record_reception(node, at)
        assert run.complete
        assert run.coverage == 1.0

    def test_delay_queries(self):
        run = self._run()
        run.record_reception(1, 10.1)
        run.record_reception(3, 10.6)
        assert run.delay_of(1) == pytest.approx(0.1)
        assert run.delay_of(2) is None
        assert run.last_delay() == pytest.approx(0.6)
        assert run.delays() == [pytest.approx(0.1), pytest.approx(0.6)]

    def test_to_distribution(self):
        run = self._run()
        run.record_reception(1, 10.2)
        dist = run.to_distribution()
        assert len(dist) == 1
        assert dist.mean() == pytest.approx(0.2)

    def test_empty_run_last_delay_none(self):
        assert self._run().last_delay() is None
