"""Integration tests: a node that leaves and rejoins mid-run catches back up.

The dynamic-membership path exercised here is the one churn scenarios rely
on: the maintainer takes a node offline (connection teardown, pending-request
cleanup), the network moves on (new blocks, new mempool transactions), and on
rejoin the policy re-clusters and re-connects the node, whose reconnect
resync (``NodeConfig.resync_on_reconnect``) pulls it back to the best chain —
all without ever double-counting in propagation statistics.
"""

from __future__ import annotations

import pytest

from repro.measurement.measuring_node import MeasurementCampaign, MeasuringNode
from repro.protocol.mining import MiningProcess, equal_hash_power
from repro.workloads.generators import fund_nodes
from repro.workloads.network_gen import NetworkParameters
from repro.workloads.scenarios import ChurnSchedule, build_scenario

#: Churn is wired (resync enabled, maintainer built) but never *started*:
#: the tests drive leave/join deterministically through the maintainer hooks.
MANUAL_CHURN = ChurnSchedule(
    median_session_s=3600.0,
    stable_fraction=1.0,
    discovery_interval_s=None,
    repair_interval_s=None,
)


@pytest.fixture
def dynamic_scenario():
    scenario = build_scenario(
        "bcbpt",
        NetworkParameters(node_count=30, seed=13),
        latency_threshold_s=0.05,
        churn=MANUAL_CHURN,
    )
    fund_nodes(list(scenario.network.nodes.values()), outputs_per_node=6)
    return scenario


class TestLeaveRejoinConvergence:
    def test_rejoining_node_converges_to_best_chain(self, dynamic_scenario):
        scenario = dynamic_scenario
        simulated = scenario.network
        simulator = scenario.simulator
        maintainer = scenario.maintainer
        network = simulated.network

        leaver = simulated.node_ids()[-1]
        miner_id = next(n for n in simulated.node_ids() if n != leaver)
        mining = MiningProcess(
            simulator,
            simulated.nodes,
            equal_hash_power([miner_id]),
            simulator.random.stream("test-mining"),
        )

        maintainer._handle_leave(leaver)
        assert not network.is_online(leaver)
        assert network.topology.degree(leaver) == 0

        # The network advances by two blocks (and a pending transaction)
        # while the leaver is away.
        payer = simulated.node(miner_id)
        payer.create_transaction([(payer.keypair.address, 1_000)])
        simulator.run(until=simulator.now + 5.0)
        assert mining.mine_one_block(winner_id=miner_id) is not None
        simulator.run(until=simulator.now + 10.0)
        pending_tx = simulated.node(miner_id).create_transaction(
            [(payer.keypair.address, 2_000)]
        )
        simulator.run(until=simulator.now + 5.0)
        assert mining.mine_one_block(winner_id=miner_id) is not None
        simulator.run(until=simulator.now + 10.0)
        third_tx = simulated.node(miner_id).create_transaction(
            [(payer.keypair.address, 3_000)]
        )
        simulator.run(until=simulator.now + 5.0)

        network_tip = simulated.node(miner_id).blockchain.tip
        leaver_node = simulated.node(leaver)
        assert leaver_node.blockchain.tip.block_hash != network_tip.block_hash
        assert leaver_node.blockchain.height == network_tip.height - 2

        maintainer._handle_join(leaver)
        assert network.is_online(leaver)
        assert network.topology.degree(leaver) > 0
        simulator.run(until=simulator.now + 30.0)

        # Chain convergence: the reconnect resync announced the peers' tips,
        # and recursive parent requests filled the two-block gap.
        assert leaver_node.blockchain.tip.block_hash == network_tip.block_hash
        assert leaver_node.blockchain.height == network_tip.height
        # Mempool catch-up: the transaction created while the node was away
        # (still unconfirmed) arrived through the peers' mempool INVs, while
        # the one confirmed in the missed blocks came in with the chain.
        assert third_tx.txid in leaver_node.known_transactions
        assert leaver_node.blockchain.contains_transaction(pending_tx.txid)
        assert leaver_node.stats.reconnect_syncs > 0

    def test_pending_requests_are_dropped_on_leave(self, dynamic_scenario):
        scenario = dynamic_scenario
        maintainer = scenario.maintainer
        leaver = scenario.network.node_ids()[-1]
        node = scenario.network.node(leaver)
        node.relay.pending_tx_requests["deadbeef"] = 0.0
        node.relay.pending_block_requests["cafebabe"] = 0.0
        maintainer._handle_leave(leaver)
        assert not node.relay.pending_tx_requests
        assert not node.relay.pending_block_requests
        assert node.stats.sessions_ended == 1


class TestNoDoubleCountingUnderChurn:
    def test_leave_and_rejoin_mid_run_counts_each_connection_once(self, dynamic_scenario):
        scenario = dynamic_scenario
        simulated = scenario.network
        simulator = scenario.simulator
        maintainer = scenario.maintainer

        measuring_id = simulated.node_ids()[0]
        measuring = MeasuringNode(
            simulated.node(measuring_id),
            simulator.random.stream("test-measuring"),
            run_timeout_s=20.0,
            exclude_long_links=True,
        )
        connections = measuring._measured_connections()
        assert connections, "measuring node needs connections"
        churner = connections[-1]

        # The churner departs just after the send and rejoins mid-run; its
        # mempool still holds whatever it accepted, and the reconnect resync
        # re-announces inventory in both directions.
        simulator.schedule(0.005, lambda: maintainer._handle_leave(churner))
        simulator.schedule(2.0, lambda: maintainer._handle_join(churner))

        run = measuring.measure_once()

        received_ids = [record.node_id for record in run.receptions]
        assert len(received_ids) == len(set(received_ids)), "a node was counted twice"
        assert set(received_ids) <= set(run.connected_nodes)
        assert len(run.receptions) <= len(run.connected_nodes)
        ranks = sorted(record.rank for record in run.receptions)
        assert ranks == list(range(1, len(run.receptions) + 1))

    def test_campaign_sample_count_matches_unique_receptions(self, dynamic_scenario):
        scenario = dynamic_scenario
        simulated = scenario.network
        simulator = scenario.simulator
        maintainer = scenario.maintainer

        measuring_id = simulated.node_ids()[0]
        measuring = MeasuringNode(
            simulated.node(measuring_id),
            simulator.random.stream("test-measuring"),
            run_timeout_s=15.0,
            exclude_long_links=True,
        )
        churner = measuring._measured_connections()[-1]
        # One full leave/rejoin cycle per repetition, offset into the run.
        for offset in (0.005, 25.0):
            simulator.schedule(offset, lambda: maintainer._handle_leave(churner))
            simulator.schedule(offset + 3.0, lambda: maintainer._handle_join(churner))

        result = MeasurementCampaign(measuring, "bcbpt-rejoin").run(2)

        total_receptions = sum(len(run.receptions) for run in result.runs)
        assert len(result.delays) == total_receptions
        for run in result.runs:
            ids = [record.node_id for record in run.receptions]
            assert len(ids) == len(set(ids))


def relay_scenario(relay):
    scenario = build_scenario(
        "bcbpt",
        NetworkParameters(node_count=30, seed=13),
        latency_threshold_s=0.05,
        churn=MANUAL_CHURN,
        relay=relay,
    )
    fund_nodes(list(scenario.network.nodes.values()), outputs_per_node=6)
    return scenario


class TestRelayStrategiesUnderChurn:
    """Every non-flood relay strategy survives a leave/rejoin cycle: in-flight
    strategy state is dropped on leave, and the rejoiner converges back to the
    best chain through that strategy's own sync path (compact announcements,
    adaptive fan-out, or a headers round-trip)."""

    @pytest.mark.parametrize("relay", ["compact", "push", "adaptive", "headers"])
    def test_rejoining_node_converges_per_strategy(self, relay):
        scenario = relay_scenario(relay)
        simulated = scenario.network
        simulator = scenario.simulator
        maintainer = scenario.maintainer

        leaver = simulated.node_ids()[-1]
        miner_id = next(n for n in simulated.node_ids() if n != leaver)
        mining = MiningProcess(
            simulator,
            simulated.nodes,
            equal_hash_power([miner_id]),
            simulator.random.stream("test-mining"),
        )

        maintainer._handle_leave(leaver)
        for _ in range(2):
            assert mining.mine_one_block(winner_id=miner_id) is not None
            simulator.run(until=simulator.now + 10.0)

        network_tip = simulated.node(miner_id).blockchain.tip
        leaver_node = simulated.node(leaver)
        assert leaver_node.blockchain.height == network_tip.height - 2

        maintainer._handle_join(leaver)
        simulator.run(until=simulator.now + 30.0)

        assert leaver_node.blockchain.tip.block_hash == network_tip.block_hash
        assert leaver_node.stats.reconnect_syncs > 0
        if relay == "headers":
            # The catch-up went through the headers-first path.
            assert leaver_node.stats.getheaders_sent > 0
            assert leaver_node.stats.headers_received > 0

    @pytest.mark.parametrize("relay", ["compact", "adaptive", "headers"])
    def test_in_flight_strategy_state_dropped_on_leave(self, relay):
        from repro.protocol.relay import _Reconstruction

        scenario = relay_scenario(relay)
        maintainer = scenario.maintainer
        leaver = scenario.network.node_ids()[-1]
        strategy = scenario.network.node(leaver).relay
        strategy.pending_block_requests["cafebabe"] = 0.0
        if relay == "compact":
            strategy._reconstructions["deadbeef"] = _Reconstruction(
                header=None, height=1, slots=[None], origin=0
            )
        elif relay == "adaptive":
            strategy._probes["deadbeef"] = (1, 0.0)
            strategy._score(1).novel_invs = 2
            strategy._fanout = 3
        elif relay == "headers":
            strategy._pending_getheaders[1] = 0.0
            strategy._header_heights["deadbeef"] = 7
            strategy._body_queue.append(("deadbeef", 1))

        maintainer._handle_leave(leaver)

        assert not strategy.pending_block_requests
        if relay == "compact":
            assert not strategy._reconstructions
        elif relay == "adaptive":
            assert not strategy._probes
            assert not strategy.scores
            assert strategy._fanout is None
        elif relay == "headers":
            assert not strategy._pending_getheaders
            assert not strategy._header_heights
            assert not strategy._body_queue

    @pytest.mark.parametrize("relay", ["compact", "adaptive", "headers"])
    def test_no_double_counting_with_churn_per_strategy(self, relay):
        scenario = relay_scenario(relay)
        simulated = scenario.network
        simulator = scenario.simulator
        maintainer = scenario.maintainer

        measuring_id = simulated.node_ids()[0]
        measuring = MeasuringNode(
            simulated.node(measuring_id),
            simulator.random.stream("test-measuring"),
            run_timeout_s=20.0,
            exclude_long_links=True,
        )
        connections = measuring._measured_connections()
        assert connections, "measuring node needs connections"
        churner = connections[-1]
        simulator.schedule(0.005, lambda: maintainer._handle_leave(churner))
        simulator.schedule(2.0, lambda: maintainer._handle_join(churner))

        run = measuring.measure_once()

        received_ids = [record.node_id for record in run.receptions]
        assert len(received_ids) == len(set(received_ids)), "a node was counted twice"
        assert set(received_ids) <= set(run.connected_nodes)
