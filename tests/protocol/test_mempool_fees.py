"""Property and regression tests for fee-priority mempool economics.

The fee-priority :class:`~repro.protocol.mempool.Mempool` promises:

* a full pool only ever trades *up* — nothing that was dropped (rejected at
  capacity or fee-evicted) ever out-bids anything that was kept;
* capacity is a hard invariant, never exceeded mid-add;
* eviction order is a pure function of the add sequence (deterministic
  across identical replays — the worker-count-invariance prerequisite);
* the PR-7 re-offer contract extends to fee evictions: a node that evicts a
  transaction forgets its txid, so a later INV can re-offer it.

Hypothesis drives the first three over arbitrary fee/size sequences; the
re-offer path is an end-to-end node test mirroring the capacity-drop one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.crypto import KeyPair
from repro.protocol.mempool import Mempool
from repro.protocol.messages import InvMessage, InventoryType, TxMessage
from repro.protocol.mining import MiningProcess, equal_hash_power
from repro.protocol.node import NodeConfig
from repro.protocol.transaction import Transaction
from repro.workloads.generators import fund_nodes
from repro.workloads.network_gen import NetworkParameters, build_network

#: One add: (fee in satoshi, extra outputs beyond the change output).
add_specs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5_000), st.integers(min_value=1, max_value=3)),
    min_size=1,
    max_size=12,
)
capacities = st.integers(min_value=1, max_value=5)

_WALLET = KeyPair.generate("fee-props-wallet")


def make_transactions(specs):
    """One independent (conflict-free) signed tx per spec, plus its fee."""
    txs = []
    for index, (fee, extra_outputs) in enumerate(specs):
        coinbase = Transaction.coinbase(
            _WALLET.address, 1_000_000, tag=f"fees-{index}"
        )
        destinations = [(f"dest-{j}", 100) for j in range(extra_outputs)]
        tx = Transaction.create_signed(
            _WALLET, [(coinbase.txid, 0, 1_000_000)], destinations, fee=fee
        )
        txs.append((tx, fee))
    return txs


def replay(pool, txs):
    """Feed every tx through ``add`` and log what happened, in order."""
    events = []
    for arrival, (tx, fee) in enumerate(txs):
        added = pool.add(tx, arrival_time=float(arrival), fee=fee)
        events.append((tx.txid, added, tuple(t.txid for t in pool.last_evicted)))
    return events


class TestFeePriorityProperties:
    @given(capacity=capacities, specs=add_specs)
    @settings(max_examples=60, deadline=None)
    def test_dropped_never_outbids_kept(self, capacity, specs):
        """Whatever the pool dropped has a feerate no higher than anything it
        kept — the pool only ever trades up."""
        txs = make_transactions(specs)
        pool = Mempool(max_size=capacity)
        events = replay(pool, txs)
        feerate = {tx.txid: fee / tx.size_bytes for tx, fee in txs}
        dropped = [txid for txid, added, _ in events if not added]
        dropped += [txid for _, _, evicted in events for txid in evicted]
        kept = [tx.txid for tx, _ in txs if tx.txid in pool]
        for dropped_txid in dropped:
            for kept_txid in kept:
                assert feerate[dropped_txid] <= feerate[kept_txid] + 1e-12

    @given(capacity=capacities, specs=add_specs)
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, capacity, specs):
        pool = Mempool(max_size=capacity)
        for arrival, (tx, fee) in enumerate(make_transactions(specs)):
            pool.add(tx, arrival_time=float(arrival), fee=fee)
            assert len(pool) <= capacity
            assert pool.is_full() == (len(pool) >= capacity)

    @given(capacity=capacities, specs=add_specs)
    @settings(max_examples=60, deadline=None)
    def test_replay_is_deterministic(self, capacity, specs):
        """Identical add sequences produce identical admissions and identical
        eviction order — no dict-order or set-order nondeterminism."""
        txs = make_transactions(specs)
        first = replay(Mempool(max_size=capacity), txs)
        second = replay(Mempool(max_size=capacity), txs)
        assert first == second

    @given(capacity=capacities, specs=add_specs)
    @settings(max_examples=60, deadline=None)
    def test_selection_order_is_feerate_then_arrival(self, capacity, specs):
        """``select_for_block`` returns non-increasing feerates, ties oldest
        first — the order ``BlockTemplate`` packs."""
        pool = Mempool(max_size=capacity)
        replay(pool, make_transactions(specs))
        selected = pool.select_for_block(capacity)
        keys = [
            (-pool.feerate(tx.txid), pool.arrival_time(tx.txid)) for tx in selected
        ]
        assert keys == sorted(keys)

    @given(specs=add_specs)
    @settings(max_examples=40, deadline=None)
    def test_zero_fee_pool_keeps_legacy_reject_at_capacity(self, specs):
        """All-zero fees reproduce the pre-fee behaviour exactly: first-come
        stays, later arrivals are rejected without eviction."""
        capacity = 2
        txs = make_transactions([(0, extra) for _, extra in specs])
        pool = Mempool(max_size=capacity)
        events = replay(pool, txs)
        for index, (txid, added, evicted) in enumerate(events):
            assert added == (index < capacity)
            assert evicted == ()


def build_ring(node_count=10, seed=2, **config_kwargs):
    """A small funded network wired as a ring with chords."""
    params = NetworkParameters(
        node_count=node_count, seed=seed, node_config=NodeConfig(**config_kwargs)
    )
    simulated = build_network(params)
    ids = simulated.node_ids()
    for index, node_id in enumerate(ids):
        simulated.network.connect(node_id, ids[(index + 1) % len(ids)])
        simulated.network.connect(node_id, ids[(index + 3) % len(ids)])
    fund_nodes(list(simulated.nodes.values()), outputs_per_node=3)
    return simulated


class TestFeeEvictionReoffer:
    def test_fee_evicted_tx_can_be_reoffered(self):
        """The PR-7 re-offer contract holds when the drop is a fee eviction:
        the evicting node forgets the victim's txid and counts the eviction,
        and a later INV re-admits the victim once the pool has room."""
        simulated = build_ring(mempool_max_size=1)
        network = simulated.network
        node = simulated.node(0)
        cheap = simulated.node(1).create_transaction(
            [("dest", 100)], broadcast=False, fee=10
        )
        rich = simulated.node(3).create_transaction(
            [("dest", 200)], broadcast=False, fee=50_000
        )
        network.send(1, 0, TxMessage(sender=1, transaction=cheap))
        simulated.simulator.run(until=5.0)
        assert cheap.txid in node.mempool
        network.send(3, 0, TxMessage(sender=3, transaction=rich))
        simulated.simulator.run(until=10.0)
        # Fee eviction: the richer tx takes the slot, the cheap one is
        # counted and deliberately forgotten.
        assert rich.txid in node.mempool
        assert cheap.txid not in node.mempool
        assert node.stats.mempool_fee_evictions == 1
        assert node.stats.mempool_capacity_drops == 0
        assert cheap.txid not in node.known_transactions
        # The pool drains (the rich tx confirms in a block mined at node 0)...
        mining = MiningProcess(
            simulated.simulator,
            simulated.nodes,
            equal_hash_power(simulated.node_ids()),
            simulated.simulator.random.stream("mining"),
        )
        assert mining.mine_one_block(winner_id=0) is not None
        simulated.simulator.run(until=simulated.simulator.now + 60.0)
        assert rich.txid not in node.mempool
        # The fee eviction also hit node 1 (every pool holds one tx), so
        # re-seed the serving peer's pool — it forgot the txid too, which is
        # itself the re-offer contract at work on the sender side.
        assert cheap.txid not in simulated.node(1).known_transactions
        assert simulated.node(1).accept_transaction(cheap, origin_peer=None).valid
        # ...and a late INV triggers a fresh GETDATA and admission.
        before = node.stats.getdata_sent
        network.send(
            1,
            0,
            InvMessage(
                sender=1,
                inventory_type=InventoryType.TRANSACTION,
                hashes=(cheap.txid,),
            ),
        )
        simulated.simulator.run(until=simulated.simulator.now + 30.0)
        assert node.stats.getdata_sent == before + 1
        assert cheap.txid in node.mempool

    def test_confirmed_double_spend_evicts_the_losing_arm(self):
        """A block confirming one arm of a double spend evicts the other arm
        from every pool that held it — left behind it would be packed into
        block templates (and invalidate them) forever.  Unlike fee evictions
        the dead txid stays remembered: it can never become valid again."""
        simulated = build_ring()
        node_a, node_b = simulated.node(0), simulated.node(5)
        wallet_node = simulated.node(2)
        funding = min(
            (
                entry
                for entry in wallet_node.utxo.entries()
                if entry.address == wallet_node.keypair.address
            ),
            key=lambda entry: entry.outpoint,
        )
        arm_one = Transaction.create_signed(
            wallet_node.keypair,
            [(funding.outpoint[0], funding.outpoint[1], funding.value)],
            [("dest-one", 100)],
            fee=20,
        )
        arm_two = Transaction.create_signed(
            wallet_node.keypair,
            [(funding.outpoint[0], funding.outpoint[1], funding.value)],
            [("dest-two", 100)],
            fee=10,
        )
        # Seed the two arms on opposite sides of the ring without announcing.
        assert node_a.accept_transaction(arm_one, origin_peer=None).valid
        assert node_b.accept_transaction(arm_two, origin_peer=None).valid
        mining = MiningProcess(
            simulated.simulator,
            simulated.nodes,
            equal_hash_power(simulated.node_ids()),
            simulated.simulator.random.stream("mining"),
        )
        block = mining.mine_one_block(winner_id=0)
        assert block is not None
        assert arm_one.txid in block.txids
        simulated.simulator.run(until=simulated.simulator.now + 60.0)
        # The losing arm is gone from node B's pool, counted, and remembered.
        assert arm_two.txid not in node_b.mempool
        assert node_b.stats.mempool_conflict_evictions == 1
        assert arm_two.txid in node_b.known_transactions
        # Node B's next template is valid again: it can mine on its own tip.
        follow_up = mining.mine_one_block(winner_id=5)
        assert follow_up is not None

    def test_zero_fee_arrival_still_counts_a_capacity_drop(self):
        """With no fee to bid, a full pool rejects exactly as before the fee
        market existed — the capacity-drop counter, not the eviction one."""
        simulated = build_ring(mempool_max_size=1)
        network = simulated.network
        node = simulated.node(0)
        first = simulated.node(1).create_transaction([("dest", 100)], broadcast=False)
        second = simulated.node(3).create_transaction([("dest", 200)], broadcast=False)
        network.send(1, 0, TxMessage(sender=1, transaction=first))
        simulated.simulator.run(until=5.0)
        network.send(3, 0, TxMessage(sender=3, transaction=second))
        simulated.simulator.run(until=10.0)
        assert first.txid in node.mempool
        assert second.txid not in node.mempool
        assert node.stats.mempool_capacity_drops == 1
        assert node.stats.mempool_fee_evictions == 0
