"""Tests for double-spend conflict observation and merchant detection.

The double-spend experiment relies on three node-level behaviours added for
it: recording when a conflicting transaction is first observed, relaying the
first conflicting transaction once (the double-spend alert), and serving the
rejected transaction to peers that request it.  These tests pin each of those
down plus the detection-time accounting and the NaN-on-zero-detections edge
case in the experiment aggregation.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.doublespend import DoubleSpendPoint, mean_detection_time_s
from repro.protocol.doublespend import DoubleSpendAttacker, merchant_detection, tally_first_seen
from repro.protocol.messages import GetDataMessage, InventoryType, TxMessage
from repro.protocol.node import NodeConfig
from repro.workloads.generators import fund_nodes
from repro.workloads.network_gen import NetworkParameters, build_network


def build_ring_network(node_count=12, seed=4, outputs=3, node_config=None):
    # Double-spend alerts are opt-in (vanilla Bitcoin drops conflicts
    # silently); this harness enables them unless a config says otherwise.
    if node_config is None:
        node_config = NodeConfig(relay_conflicts=True)
    parameters = NetworkParameters(node_count=node_count, seed=seed, node_config=node_config)
    simulated = build_network(parameters)
    ids = simulated.node_ids()
    for index, node_id in enumerate(ids):
        simulated.network.connect(node_id, ids[(index + 1) % len(ids)])
        simulated.network.connect(node_id, ids[(index + 2) % len(ids)])
    fund_nodes(list(simulated.nodes.values()), outputs_per_node=outputs)
    return simulated


def build_conflict_pair(simulated, attacker_id=0, merchant_id=6, amount=1000):
    attacker_node = simulated.node(attacker_id)
    merchant_node = simulated.node(merchant_id)
    attacker = DoubleSpendAttacker(attacker_node, merchant_node.keypair.address)
    return attacker.build_pair(amount)


class TestConflictObservation:
    def test_rejected_conflict_is_recorded(self):
        simulated = build_ring_network()
        node = simulated.node(3)
        pair = build_conflict_pair(simulated)
        node.accept_transaction(pair.victim_tx, origin_peer=None)
        result = node.accept_transaction(pair.attacker_tx, origin_peer=4)
        assert not result.valid
        assert pair.attacker_tx.txid in node.observed_conflicts
        conflicting_txid, observed_at = node.observed_conflicts[pair.attacker_tx.txid]
        assert conflicting_txid == pair.victim_tx.txid
        assert observed_at == node.now
        assert node.first_conflict_time(pair.attacker_tx.txid) == observed_at
        # The mempool still applies first-seen: only the victim tx is pending.
        assert pair.victim_tx.txid in node.mempool
        assert pair.attacker_tx.txid not in node.mempool

    def test_conflict_observed_only_once(self):
        simulated = build_ring_network()
        node = simulated.node(3)
        pair = build_conflict_pair(simulated)
        node.accept_transaction(pair.victim_tx, origin_peer=None)
        node.accept_transaction(pair.attacker_tx, origin_peer=4)
        first = node.observed_conflicts[pair.attacker_tx.txid]
        node.accept_transaction(pair.attacker_tx, origin_peer=5)
        assert node.observed_conflicts[pair.attacker_tx.txid] == first

    def test_no_conflict_recorded_for_clean_transactions(self):
        simulated = build_ring_network()
        node = simulated.node(3)
        pair = build_conflict_pair(simulated)
        node.accept_transaction(pair.victim_tx, origin_peer=None)
        assert node.observed_conflicts == {}

    def test_conflicting_transaction_served_on_getdata(self):
        simulated = build_ring_network()
        simulator = simulated.simulator
        node = simulated.node(3)
        peer = simulated.node(4)
        pair = build_conflict_pair(simulated)
        node.accept_transaction(pair.victim_tx, origin_peer=None)
        node.accept_transaction(pair.attacker_tx, origin_peer=2)
        request = GetDataMessage(
            sender=peer.node_id,
            inventory_type=InventoryType.TRANSACTION,
            hashes=(pair.attacker_tx.txid,),
        )
        node.handle_message(peer.node_id, request)
        simulator.run(until=simulator.now + 5.0)
        assert pair.attacker_tx.txid in peer.known_transactions

    def test_relay_conflicts_announces_the_alert(self):
        simulated = build_ring_network()
        simulator = simulated.simulator
        node = simulated.node(3)
        pair = build_conflict_pair(simulated)
        node.accept_transaction(pair.victim_tx, origin_peer=None)
        node.handle_message(2, TxMessage(sender=2, transaction=pair.attacker_tx))
        simulator.run(until=simulator.now + 5.0)
        # Neighbours other than the origin hear the alert.
        neighbours = [simulated.node(p) for p in node.neighbors() if p != 2]
        assert neighbours
        for neighbour in neighbours:
            assert pair.attacker_tx.txid in neighbour.known_transactions


class TestMerchantDetection:
    def test_merchant_detects_conflict_through_alert_flood(self):
        simulated = build_ring_network()
        simulator = simulated.simulator
        merchant = simulated.node(6)
        pair = build_conflict_pair(simulated)
        start = simulator.now
        merchant.accept_transaction(pair.victim_tx, origin_peer=None)
        merchant.announce_transaction(pair.victim_tx.txid)
        simulated.node(0).accept_transaction(pair.attacker_tx, origin_peer=None)
        simulated.node(0).announce_transaction(pair.attacker_tx.txid)
        simulator.run(until=start + 30.0)
        detected, detection_time = merchant_detection(
            merchant, pair, start_time=start, horizon_s=30.0
        )
        assert detected
        assert detection_time is not None
        assert 0.0 < detection_time <= 30.0
        # The first-seen split itself is unchanged by the alert relay.
        outcome = tally_first_seen(list(simulated.nodes.values()), pair)
        assert outcome.total_deciding_nodes == simulated.node_count

    def test_without_conflict_relay_the_merchant_stays_blind(self):
        # The default NodeConfig: conflicts are dropped silently, as in
        # vanilla Bitcoin — and as every non-doublespend experiment runs.
        simulated = build_ring_network(node_config=NodeConfig())
        simulator = simulated.simulator
        merchant = simulated.node(6)
        pair = build_conflict_pair(simulated)
        start = simulator.now
        merchant.accept_transaction(pair.victim_tx, origin_peer=None)
        merchant.announce_transaction(pair.victim_tx.txid)
        simulated.node(0).accept_transaction(pair.attacker_tx, origin_peer=None)
        simulated.node(0).announce_transaction(pair.attacker_tx.txid)
        simulator.run(until=start + 30.0)
        # The merchant sits inside the victim wave: without double-spend
        # alerts, the attacker wave halts at the first-seen frontier and the
        # conflicting txid never reaches it — the pre-fix detection_rate=0 bug.
        detected, detection_time = merchant_detection(
            merchant, pair, start_time=start, horizon_s=30.0
        )
        assert not detected
        assert detection_time is None

    def test_detection_time_uses_first_seen_not_acceptance(self):
        simulated = build_ring_network()
        merchant = simulated.node(6)
        pair = build_conflict_pair(simulated)
        merchant.accept_transaction(pair.victim_tx, origin_peer=None)
        merchant.accept_transaction(pair.attacker_tx, origin_peer=5)
        # The attacker tx is rejected, so it never gets an acceptance time —
        # but the reception (first-seen) time drives detection anyway.
        assert pair.attacker_tx.txid not in merchant.transaction_accept_times
        detected, detection_time = merchant_detection(
            merchant, pair, start_time=merchant.now, horizon_s=2.0
        )
        assert detected
        assert detection_time == 0.0

    def test_detection_time_clamps_to_horizon_and_zero(self):
        simulated = build_ring_network()
        merchant = simulated.node(6)
        pair = build_conflict_pair(simulated)
        merchant.accept_transaction(pair.victim_tx, origin_peer=None)
        merchant.accept_transaction(pair.attacker_tx, origin_peer=5)
        seen = merchant.transaction_first_seen_times[pair.attacker_tx.txid]
        # Start after the recorded time -> clamps to 0, never negative.
        detected, detection_time = merchant_detection(
            merchant, pair, start_time=seen + 1.0, horizon_s=2.0
        )
        assert detected and detection_time == 0.0
        # Start far before the recorded time -> clamps to the horizon.
        detected, detection_time = merchant_detection(
            merchant, pair, start_time=seen - 10.0, horizon_s=2.0
        )
        assert detected and detection_time == 2.0


class TestDetectionAggregation:
    def test_mean_detection_time_of_samples(self):
        assert mean_detection_time_s([0.5, 1.5]) == pytest.approx(1.0)

    def test_mean_detection_time_nan_on_zero_detections(self):
        assert math.isnan(mean_detection_time_s([]))

    def test_point_accepts_nan_detection_time(self):
        point = DoubleSpendPoint(
            protocol="bitcoin",
            races=4,
            mean_attacker_share=0.5,
            mean_detection_time_s=mean_detection_time_s([]),
            detection_rate=0.0,
        )
        assert math.isnan(point.mean_detection_time_s)
        assert point.detection_rate == 0.0
