"""Tests for the UTXO ledger."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.crypto import KeyPair
from repro.protocol.transaction import Transaction
from repro.protocol.utxo import UtxoEntry, UtxoSet


def entry(txid="t1", index=0, value=100, address="addr"):
    return UtxoEntry(txid=txid, index=index, value=value, address=address)


class TestUtxoSet:
    def test_add_and_lookup(self):
        utxo = UtxoSet()
        utxo.add(entry())
        assert ("t1", 0) in utxo
        assert utxo.get(("t1", 0)).value == 100
        assert len(utxo) == 1

    def test_duplicate_add_rejected(self):
        utxo = UtxoSet()
        utxo.add(entry())
        with pytest.raises(ValueError):
            utxo.add(entry())

    def test_remove_spends_entry(self):
        utxo = UtxoSet()
        utxo.add(entry())
        removed = utxo.remove(("t1", 0))
        assert removed.value == 100
        assert ("t1", 0) not in utxo

    def test_remove_missing_rejected(self):
        with pytest.raises(KeyError):
            UtxoSet().remove(("nope", 0))

    def test_balance_by_address(self):
        utxo = UtxoSet()
        utxo.add(entry(txid="a", value=100, address="alice"))
        utxo.add(entry(txid="b", value=250, address="alice"))
        utxo.add(entry(txid="c", value=999, address="bob"))
        assert utxo.balance("alice") == 350
        assert utxo.balance("bob") == 999
        assert utxo.balance("carol") == 0

    def test_spendable_by_sorted(self):
        utxo = UtxoSet()
        utxo.add(entry(txid="z", value=1, address="alice"))
        utxo.add(entry(txid="a", value=2, address="alice"))
        outpoints = [e.outpoint for e in utxo.spendable_by("alice")]
        assert outpoints == sorted(outpoints)

    def test_total_value(self):
        utxo = UtxoSet()
        utxo.add(entry(txid="a", value=10))
        utxo.add(entry(txid="b", value=20))
        assert utxo.total_value() == 30

    def test_balance_updates_after_removal(self):
        utxo = UtxoSet()
        utxo.add(entry(address="alice"))
        utxo.remove(("t1", 0))
        assert utxo.balance("alice") == 0


class TestApplyTransaction:
    def _setup(self):
        keypair = KeyPair.generate("wallet")
        coinbase = Transaction.coinbase(keypair.address, 1_000)
        utxo = UtxoSet()
        utxo.apply_transaction(coinbase)
        return keypair, coinbase, utxo

    def test_coinbase_creates_outputs(self):
        keypair, coinbase, utxo = self._setup()
        assert utxo.balance(keypair.address) == 1_000

    def test_spend_moves_value(self):
        keypair, coinbase, utxo = self._setup()
        tx = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("merchant", 400)])
        utxo.apply_transaction(tx)
        assert utxo.balance("merchant") == 400
        assert utxo.balance(keypair.address) == 600
        assert (coinbase.txid, 0) not in utxo

    def test_apply_missing_input_rejected(self):
        keypair, coinbase, utxo = self._setup()
        tx = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("merchant", 400)])
        utxo.apply_transaction(tx)
        with pytest.raises(KeyError):
            utxo.apply_transaction(tx)

    def test_can_apply_checks_inputs(self):
        keypair, coinbase, utxo = self._setup()
        tx = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("merchant", 400)])
        assert utxo.can_apply(tx)
        utxo.apply_transaction(tx)
        assert not utxo.can_apply(tx)

    def test_copy_is_independent(self):
        keypair, coinbase, utxo = self._setup()
        clone = utxo.copy()
        clone.remove((coinbase.txid, 0))
        assert (coinbase.txid, 0) in utxo
        assert (coinbase.txid, 0) not in clone

    def test_from_transactions_builder(self):
        keypair = KeyPair.generate("wallet")
        coinbase = Transaction.coinbase(keypair.address, 1_000)
        tx = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("dest", 250)])
        utxo = UtxoSet.from_transactions([coinbase, tx])
        assert utxo.balance("dest") == 250
        assert utxo.balance(keypair.address) == 750

    @given(values=st.lists(st.integers(1, 10_000), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_total_value_conserved_by_spends_property(self, values):
        """Applying any chain of valid spends never changes total ledger value."""
        keypair = KeyPair.generate("wallet")
        utxo = UtxoSet()
        coinbases = [
            Transaction.coinbase(keypair.address, value, tag=str(i))
            for i, value in enumerate(values)
        ]
        for coinbase in coinbases:
            utxo.apply_transaction(coinbase)
        total_before = utxo.total_value()
        spend = Transaction.create_signed(
            keypair,
            [(coinbases[0].txid, 0, values[0])],
            [("merchant", max(1, values[0] // 2))],
        )
        utxo.apply_transaction(spend)
        assert utxo.total_value() == total_before
