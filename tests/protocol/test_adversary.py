"""Unit and property tests for the adversary plane (`repro.protocol.adversary`).

Three layers of coverage:

* the byzantine behaviour vocabulary as pure message filters (drop/forward/
  delay decisions, the withheld-hash filter, `referenced_block_hashes`);
* the network plumbing — one behaviour per node on the fabric's single send
  choke point, suppression accounting, and the selfish miner's withholding
  state machine driven by forced winners;
* the PR's Hypothesis properties: the same master seed yields the identical
  event trace with byzantine nodes active, for every relay strategy (all
  adversary randomness lives on its own named streams), and withheld blocks
  never corrupt honest best-chain invariants.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.protocol.adversary import (
    DelayByzantine,
    SelectiveByzantine,
    SelfishMiner,
    SilentByzantine,
    WithholdingBehavior,
    referenced_block_hashes,
)
from repro.protocol.block import BlockHeader
from repro.protocol.messages import (
    BlockMessage,
    BlockTxnMessage,
    CmpctBlockMessage,
    GetBlockTxnMessage,
    GetDataMessage,
    GetHeadersMessage,
    HeadersMessage,
    InvMessage,
    InventoryType,
    PingMessage,
    TxMessage,
)
from repro.protocol.mining import MiningProcess, equal_hash_power
from repro.protocol.relay import RELAY_COMMANDS, RELAY_NAMES
from repro.workloads.generators import (
    TransactionWorkload,
    WorkloadConfig,
    fund_nodes,
)
from repro.workloads.network_gen import NetworkParameters, build_network
from repro.workloads.scenarios import AttackSpec, build_scenario, install_attack


def _header(tag: str) -> BlockHeader:
    return BlockHeader(
        previous_hash=f"prev-{tag}", merkle_root="root", timestamp=0.0, nonce=0
    )


#: One instance of every relay-plane message; their commands must cover
#: RELAY_COMMANDS exactly, so a byzantine filter tested against this list is
#: tested against the entire give-inventory vocabulary.
RELAY_MESSAGES = [
    InvMessage(sender=0, inventory_type=InventoryType.BLOCK, hashes=("b1",)),
    TxMessage(sender=0),
    BlockMessage(sender=0),
    CmpctBlockMessage(sender=0),
    BlockTxnMessage(sender=0, block_hash="b1"),
    HeadersMessage(sender=0, headers=(_header("a"),)),
]

#: Request-plane traffic a plausible byzantine peer keeps sending.
REQUEST_MESSAGES = [
    GetDataMessage(sender=0, inventory_type=InventoryType.BLOCK, hashes=("b1",)),
    GetHeadersMessage(sender=0, locator=("b0",)),
    PingMessage(sender=0),
]


class TestReferencedBlockHashes:
    def test_relay_message_fixture_covers_the_whole_vocabulary(self):
        assert {m.command for m in RELAY_MESSAGES} == set(RELAY_COMMANDS)

    def test_block_inv_reveals_its_hashes(self):
        message = InvMessage(
            sender=1, inventory_type=InventoryType.BLOCK, hashes=("b1", "b2")
        )
        assert referenced_block_hashes(message) == ("b1", "b2")

    def test_transaction_inv_reveals_nothing(self):
        message = InvMessage(
            sender=1, inventory_type=InventoryType.TRANSACTION, hashes=("t1",)
        )
        assert referenced_block_hashes(message) == ()

    def test_compact_block_reveals_its_header_hash(self):
        header = _header("c")
        message = CmpctBlockMessage(sender=1, header=header)
        assert referenced_block_hashes(message) == (header.block_hash,)
        assert referenced_block_hashes(CmpctBlockMessage(sender=1)) == ()

    def test_block_txn_round_trip_messages_leak_the_hash(self):
        assert referenced_block_hashes(
            GetBlockTxnMessage(sender=1, block_hash="b9")
        ) == ("b9",)
        assert referenced_block_hashes(
            BlockTxnMessage(sender=1, block_hash="b9")
        ) == ("b9",)

    def test_headers_reveal_every_header(self):
        first, second = _header("h1"), _header("h2")
        message = HeadersMessage(sender=1, headers=(first, second))
        assert referenced_block_hashes(message) == (
            first.block_hash,
            second.block_hash,
        )

    def test_request_plane_reveals_nothing(self):
        for message in REQUEST_MESSAGES:
            assert referenced_block_hashes(message) == ()


class TestSilentByzantine:
    def test_drops_every_relay_command(self):
        behavior = SilentByzantine()
        for message in RELAY_MESSAGES:
            assert behavior.filter_send(7, message, 0.0).drop

    def test_forwards_the_request_plane(self):
        behavior = SilentByzantine()
        for message in REQUEST_MESSAGES:
            decision = behavior.filter_send(7, message, 0.0)
            assert not decision.drop
            assert decision.extra_delay_s == 0.0


class TestSelectiveByzantine:
    def test_starves_only_the_targets(self):
        behavior = SelectiveByzantine(targets={3, 4})
        for message in RELAY_MESSAGES:
            assert behavior.filter_send(3, message, 0.0).drop
            assert behavior.filter_send(4, message, 0.0).drop
            assert not behavior.filter_send(5, message, 0.0).drop

    def test_requests_still_flow_to_the_targets(self):
        behavior = SelectiveByzantine(targets={3})
        for message in REQUEST_MESSAGES:
            assert not behavior.filter_send(3, message, 0.0).drop


class TestDelayByzantine:
    def test_fixed_delay_needs_no_rng(self):
        behavior = DelayByzantine(0.5)
        for message in RELAY_MESSAGES:
            decision = behavior.filter_send(7, message, 0.0)
            assert not decision.drop
            assert decision.extra_delay_s == 0.5

    def test_jitter_draws_from_the_given_stream(self):
        behavior = DelayByzantine(0.5, jitter_s=0.25, rng=np.random.default_rng(3))
        message = RELAY_MESSAGES[0]
        for _ in range(50):
            extra = behavior.filter_send(7, message, 0.0).extra_delay_s
            assert 0.5 <= extra < 0.75

    def test_request_plane_is_not_delayed(self):
        behavior = DelayByzantine(0.5, jitter_s=0.25, rng=np.random.default_rng(3))
        for message in REQUEST_MESSAGES:
            assert behavior.filter_send(7, message, 0.0).extra_delay_s == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            DelayByzantine(-0.1)
        with pytest.raises(ValueError, match="negative"):
            DelayByzantine(0.1, jitter_s=-0.1)
        with pytest.raises(ValueError, match="rng"):
            DelayByzantine(0.1, jitter_s=0.1)


class TestWithholdingBehavior:
    def test_everything_flows_while_nothing_is_withheld(self):
        behavior = WithholdingBehavior(set())
        for message in RELAY_MESSAGES + REQUEST_MESSAGES:
            assert not behavior.filter_send(7, message, 0.0).drop
        assert behavior.suppressed == 0

    def test_suppresses_any_reference_to_a_withheld_block(self):
        withheld: set[str] = {"b1"}
        behavior = WithholdingBehavior(withheld)
        announcement = InvMessage(
            sender=0, inventory_type=InventoryType.BLOCK, hashes=("b1",)
        )
        assert behavior.filter_send(7, announcement, 0.0).drop
        assert behavior.suppressed == 1
        # Other blocks — and transactions — still relay normally.
        other = InvMessage(sender=0, inventory_type=InventoryType.BLOCK, hashes=("b2",))
        assert not behavior.filter_send(7, other, 0.0).drop
        # Releasing the hash re-opens the tap (the set is shared by design).
        withheld.discard("b1")
        assert not behavior.filter_send(7, announcement, 0.0).drop


def build_ring_network(node_count=10, seed=4, outputs=3):
    """A funded ring (degree-4) network — no policy, no churn, no relay frills."""
    simulated = build_network(NetworkParameters(node_count=node_count, seed=seed))
    ids = simulated.node_ids()
    for index, node_id in enumerate(ids):
        simulated.network.connect(node_id, ids[(index + 1) % len(ids)])
        simulated.network.connect(node_id, ids[(index + 2) % len(ids)])
    fund_nodes(list(simulated.nodes.values()), outputs_per_node=outputs)
    return simulated


class TestBehaviorPlumbing:
    def test_install_on_unknown_node_rejected(self):
        simulated = build_ring_network()
        with pytest.raises(KeyError, match="unknown node"):
            simulated.network.install_behavior(999, SilentByzantine())

    def test_double_install_rejected(self):
        simulated = build_ring_network()
        simulated.network.install_behavior(2, SilentByzantine())
        with pytest.raises(ValueError, match="already has"):
            simulated.network.install_behavior(2, DelayByzantine(0.1))

    def test_node_accessors_and_removal(self):
        simulated = build_ring_network()
        node = simulated.node(2)
        assert not node.is_byzantine
        behavior = SilentByzantine()
        node.install_behavior(behavior)
        assert node.is_byzantine
        assert node.behavior is behavior
        assert simulated.network.byzantine_node_ids == [2]
        assert simulated.network.remove_behavior(2) is behavior
        assert not node.is_byzantine
        assert simulated.network.remove_behavior(2) is None
        assert simulated.network.byzantine_node_ids == []

    def test_silent_node_really_suppresses_its_relay_traffic(self):
        simulated = build_ring_network()
        creator = simulated.node(2)
        creator.install_behavior(SilentByzantine())
        tx = creator.create_transaction([("dest", 500)])
        simulated.simulator.run(until=10.0)
        assert simulated.network.messages_suppressed > 0
        for node_id in simulated.node_ids():
            if node_id != 2:
                assert tx.txid not in simulated.node(node_id).mempool

    def test_delaying_node_stalls_but_does_not_censor(self):
        simulated = build_ring_network()
        creator = simulated.node(2)
        creator.install_behavior(DelayByzantine(1.0))
        tx = creator.create_transaction([("dest", 500)])
        # Honest link delays are milliseconds; at t=0.9 s the only reason
        # nobody has the transaction is the 1-second byzantine hold-back.
        simulated.simulator.run(until=0.9)
        others = [n for n in simulated.node_ids() if n != 2]
        assert all(tx.txid not in simulated.node(n).mempool for n in others)
        simulated.simulator.run(until=20.0)
        assert all(tx.txid in simulated.node(n).mempool for n in others)
        assert simulated.network.messages_suppressed == 0


class TestSelfishMiner:
    def _setup(self, attacker_id=0):
        simulated = build_ring_network()
        mining = MiningProcess(
            simulated.simulator,
            simulated.nodes,
            equal_hash_power(simulated.node_ids()),
            simulated.simulator.random.stream("mining"),
        )
        miner = SelfishMiner(
            simulated.simulator,
            simulated.network,
            simulated.node(attacker_id),
            mining,
        )
        return simulated, mining, miner

    def _advance(self, simulated, seconds=10.0):
        simulated.simulator.run(until=simulated.simulator.now + seconds)

    def test_occupied_mining_hook_rejected(self):
        simulated = build_ring_network()
        mining = MiningProcess(
            simulated.simulator,
            simulated.nodes,
            equal_hash_power(simulated.node_ids()),
            simulated.simulator.random.stream("mining"),
            on_block_found=lambda block, miner_id: None,
        )
        with pytest.raises(ValueError, match="on_block_found"):
            SelfishMiner(
                simulated.simulator, simulated.network, simulated.node(0), mining
            )

    def test_honest_blocks_pass_through_untouched(self):
        simulated, mining, miner = self._setup()
        block = mining.mine_one_block(winner_id=5)
        self._advance(simulated)
        assert miner.lead == 0
        assert miner.blocks_withheld == 0
        assert all(
            simulated.node(n).blockchain.has_block(block.block_hash)
            for n in simulated.node_ids()
        )

    def test_attacker_block_is_withheld(self):
        simulated, mining, miner = self._setup()
        block = mining.mine_one_block(winner_id=0)
        self._advance(simulated)
        assert miner.lead == 1
        assert miner.blocks_withheld == 1
        assert block.block_hash in miner.withheld_hashes
        assert simulated.node(0).blockchain.has_block(block.block_hash)
        for node_id in simulated.node_ids():
            if node_id != 0:
                assert not simulated.node(node_id).blockchain.has_block(
                    block.block_hash
                )
        assert miner.behavior.suppressed > 0
        assert simulated.network.messages_suppressed > 0

    def test_race_on_a_one_block_lead(self):
        simulated, mining, miner = self._setup()
        private = mining.mine_one_block(winner_id=0)
        self._advance(simulated)
        honest = mining.mine_one_block(winner_id=5)
        self._advance(simulated)
        assert miner.races_started == 1
        assert miner.blocks_released == 1
        assert miner.lead == 0
        assert miner.withheld_hashes == frozenset()
        # The honest block propagated; the released private block competes
        # for the same height, so at least the attacker's neighbours fetched
        # it (distant nodes may never hear about a losing fork).
        assert all(
            simulated.node(n).blockchain.has_block(honest.block_hash)
            for n in simulated.node_ids()
            if n != 0
        )
        neighbours = simulated.network.neighbors(0)
        assert any(
            simulated.node(n).blockchain.has_block(private.block_hash)
            for n in neighbours
        )

    def test_two_block_lead_publishes_the_whole_private_chain(self):
        simulated, mining, miner = self._setup()
        first = mining.mine_one_block(winner_id=0)
        self._advance(simulated)
        second = mining.mine_one_block(winner_id=0)
        self._advance(simulated)
        assert miner.lead == 2
        mining.mine_one_block(winner_id=5)
        self._advance(simulated)
        assert miner.lead == 0
        assert miner.blocks_released == 2
        assert miner.races_started == 0
        # The attacker's two blocks out-run the one honest block: every node
        # converges onto the private chain.
        for node_id in simulated.node_ids():
            chain_hashes = {
                b.block_hash for b in simulated.node(node_id).blockchain.best_chain()
            }
            assert first.block_hash in chain_hashes
            assert second.block_hash in chain_hashes

    def test_long_lead_releases_only_the_oldest_block(self):
        simulated, mining, miner = self._setup()
        blocks = [mining.mine_one_block(winner_id=0) for _ in range(3)]
        self._advance(simulated)
        assert miner.lead == 3
        mining.mine_one_block(winner_id=5)
        self._advance(simulated)
        assert miner.lead == 2
        assert miner.blocks_released == 1
        assert blocks[0].block_hash not in miner.withheld_hashes
        assert blocks[1].block_hash in miner.withheld_hashes
        assert blocks[2].block_hash in miner.withheld_hashes

    def test_release_all_flushes_the_private_chain(self):
        simulated, mining, miner = self._setup()
        for _ in range(2):
            mining.mine_one_block(winner_id=0)
            self._advance(simulated)
        assert miner.release_all() == 2
        self._advance(simulated)
        assert miner.lead == 0
        assert miner.withheld_hashes == frozenset()
        share = miner.revenue_share(simulated.node(5))
        assert share == 1.0  # only attacker blocks were ever mined

    def test_revenue_share_is_nan_without_mined_blocks(self):
        simulated, mining, miner = self._setup()
        assert math.isnan(miner.revenue_share(simulated.node(5)))


def _attacked_trace(seed: int, relay: str, kind: str):
    """Build, corrupt, run and fingerprint one adversarial simulation."""
    scenario = build_scenario(
        "bcbpt",
        NetworkParameters(node_count=20, seed=seed, trace=True),
        latency_threshold_s=0.05,
        relay=relay,
    )
    corrupted = install_attack(scenario, AttackSpec(kind=kind, fraction=0.2))
    simulated = scenario.network
    fund_nodes(list(simulated.nodes.values()), outputs_per_node=30)
    workload = TransactionWorkload(
        simulated.simulator,
        simulated.nodes,
        simulated.simulator.random.stream("trace-workload"),
        WorkloadConfig(transactions_per_second=1.0, sender_count=5),
    )
    workload.start()
    mining = MiningProcess(
        simulated.simulator,
        simulated.nodes,
        equal_hash_power(simulated.node_ids()),
        simulated.simulator.random.stream("attack-mining"),
    )
    simulated.simulator.run(until=10.0)
    mining.mine_one_block()
    simulated.simulator.run(until=20.0)
    trace = [
        (record.time, record.category, record.subject, repr(record.detail))
        for record in simulated.simulator.tracer.records()
    ]
    return corrupted, trace


class TestAdversarialDeterminism:
    """Same master seed ⇒ identical adversarial run, per relay strategy."""

    @pytest.mark.parametrize("relay", RELAY_NAMES)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=3, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_same_seed_same_trace_with_byzantine_nodes(self, relay, seed):
        first_corrupted, first = _attacked_trace(seed, relay, "byzantine")
        second_corrupted, second = _attacked_trace(seed, relay, "byzantine")
        assert first_corrupted == second_corrupted
        assert len(first_corrupted) > 0
        assert first == second
        assert len(first) > 0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=3, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_jittered_delay_adversary_is_deterministic(self, seed):
        """The delay behaviour's jitter draws come from the named
        ``"adversary-behavior"`` stream, never from global state."""
        first_corrupted, first = _attacked_trace(seed, "flood", "delay")
        second_corrupted, second = _attacked_trace(seed, "flood", "delay")
        assert first_corrupted == second_corrupted
        assert first == second


def _assert_chain_linked(node) -> None:
    chain = node.blockchain.best_chain()
    for height, block in enumerate(chain):
        assert block.height == height
    for previous, current in zip(chain, chain[1:]):
        assert current.header.previous_hash == previous.block_hash


class TestWithholdingInvariants:
    """Withheld blocks never corrupt honest best-chain invariants."""

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_honest_chains_stay_consistent_through_withholding(self, seed):
        simulated = build_ring_network()
        ids = simulated.node_ids()
        mining = MiningProcess(
            simulated.simulator,
            simulated.nodes,
            equal_hash_power(ids),
            simulated.simulator.random.stream("mining"),
        )
        miner = SelfishMiner(
            simulated.simulator, simulated.network, simulated.node(0), mining
        )
        rng = np.random.default_rng(seed)
        honest = [n for n in ids if n != 0]
        for winner in rng.integers(0, len(ids), size=6):
            mining.mine_one_block(winner_id=ids[int(winner)])
            simulated.simulator.run(until=simulated.simulator.now + 5.0)
            # While a block is withheld, no honest node may know it — and
            # every honest best chain must stay internally linked.
            for node_id in honest:
                node = simulated.node(node_id)
                for withheld_hash in miner.withheld_hashes:
                    assert not node.blockchain.has_block(withheld_hash)
                _assert_chain_linked(node)
        miner.release_all()
        simulated.simulator.run(until=simulated.simulator.now + 15.0)
        assert miner.lead == 0
        assert miner.withheld_hashes == frozenset()
        for node_id in ids:
            _assert_chain_linked(simulated.node(node_id))
        share = miner.revenue_share(simulated.node(honest[0]))
        assert math.isnan(share) or 0.0 <= share <= 1.0
