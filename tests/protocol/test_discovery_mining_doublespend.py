"""Tests for peer discovery, mining and the double-spend attacker."""

import numpy as np
import pytest

from repro.net.geo import GeoPosition
from repro.protocol.discovery import AddressBook, DnsSeedService
from repro.protocol.doublespend import DoubleSpendAttacker, DoubleSpendOutcome, tally_first_seen
from repro.protocol.mining import MinerProfile, MiningProcess, equal_hash_power
from repro.workloads.generators import fund_nodes
from repro.workloads.network_gen import NetworkParameters, build_network


class TestAddressBook:
    def test_owner_never_recorded(self):
        book = AddressBook(owner_id=5)
        book.add(5)
        assert len(book) == 0

    def test_add_and_lookup(self):
        book = AddressBook(owner_id=0)
        book.add(3, seen_at=10.0)
        assert 3 in book
        assert book.last_seen(3) == 10.0

    def test_last_seen_keeps_latest(self):
        book = AddressBook(owner_id=0)
        book.add(3, seen_at=10.0)
        book.add(3, seen_at=5.0)
        assert book.last_seen(3) == 10.0
        book.add(3, seen_at=20.0)
        assert book.last_seen(3) == 20.0

    def test_update_many(self):
        book = AddressBook(owner_id=0)
        book.update([1, 2, 3, 0])
        assert book.addresses() == [1, 2, 3]

    def test_sample_without_replacement(self):
        book = AddressBook(owner_id=0)
        book.update(range(1, 21))
        sample = book.sample(np.random.default_rng(1), 5)
        assert len(sample) == 5
        assert len(set(sample)) == 5

    def test_sample_more_than_known_returns_all(self):
        book = AddressBook(owner_id=0)
        book.update([1, 2, 3])
        assert sorted(book.sample(np.random.default_rng(1), 10)) == [1, 2, 3]


class TestDnsSeedService:
    def _service(self, count=20):
        rng = np.random.default_rng(3)
        positions = {
            i: GeoPosition(float(i), float(i), region=f"r{i % 3}", country="XX")
            for i in range(count)
        }
        service = DnsSeedService(positions, rng, seed_sample_size=5)
        for i in range(count):
            service.set_online(i, True)
        return service

    def test_query_excludes_requester(self):
        service = self._service()
        assert 0 not in service.query(0)

    def test_query_respects_sample_size(self):
        service = self._service()
        assert len(service.query(0)) == 5

    def test_query_returns_all_when_few_online(self):
        service = self._service(count=4)
        assert sorted(service.query(0)) == [1, 2, 3]

    def test_offline_nodes_not_returned(self):
        service = self._service(count=6)
        service.set_online(3, False)
        for _ in range(10):
            assert 3 not in service.query(0)

    def test_proximity_ranked_query_orders_by_distance(self):
        service = self._service()
        ranked = service.query_proximity_ranked(0)
        positions = {
            i: GeoPosition(float(i), float(i), region="r", country="XX") for i in range(20)
        }
        origin = positions[0]
        distances = [origin.distance_km(positions[peer]) for peer in ranked]
        assert distances == sorted(distances)

    def test_query_counter(self):
        service = self._service()
        service.query(0)
        service.query_proximity_ranked(1)
        assert service.queries_served == 2

    def test_invalid_sample_size_rejected(self):
        with pytest.raises(ValueError):
            DnsSeedService({}, np.random.default_rng(1), seed_sample_size=0)


def build_ring_network(node_count=10, seed=4, outputs=3):
    simulated = build_network(NetworkParameters(node_count=node_count, seed=seed))
    ids = simulated.node_ids()
    for index, node_id in enumerate(ids):
        simulated.network.connect(node_id, ids[(index + 1) % len(ids)])
        simulated.network.connect(node_id, ids[(index + 2) % len(ids)])
    fund_nodes(list(simulated.nodes.values()), outputs_per_node=outputs)
    return simulated


class TestMining:
    def test_equal_hash_power_helper(self):
        profiles = equal_hash_power([1, 2, 3, 4])
        assert len(profiles) == 4
        assert sum(p.hash_power for p in profiles) == pytest.approx(1.0)

    def test_negative_hash_power_rejected(self):
        with pytest.raises(ValueError):
            MinerProfile(node_id=0, hash_power=-1.0)

    def test_requires_miners(self):
        simulated = build_ring_network()
        with pytest.raises(ValueError):
            MiningProcess(
                simulated.simulator, simulated.nodes, [], simulated.simulator.random.stream("m")
            )

    def test_mine_one_block_extends_winner_chain(self):
        simulated = build_ring_network()
        mining = MiningProcess(
            simulated.simulator,
            simulated.nodes,
            equal_hash_power(simulated.node_ids()),
            simulated.simulator.random.stream("mining"),
        )
        block = mining.mine_one_block(winner_id=0)
        assert block is not None
        assert simulated.node(0).blockchain.height == 2
        assert mining.blocks_mined == 1

    def test_block_contains_pending_transactions(self):
        simulated = build_ring_network()
        creator = simulated.node(2)
        tx = creator.create_transaction([("dest", 500)])
        simulated.simulator.run(until=30.0)
        mining = MiningProcess(
            simulated.simulator,
            simulated.nodes,
            equal_hash_power([0]),
            simulated.simulator.random.stream("mining"),
        )
        block = mining.mine_one_block(winner_id=0)
        assert block is not None
        assert block.contains(tx.txid)

    def test_winner_selection_follows_hash_power(self):
        simulated = build_ring_network()
        miners = [MinerProfile(0, 0.9)] + [MinerProfile(i, 0.1 / 9) for i in range(1, 10)]
        mining = MiningProcess(
            simulated.simulator,
            simulated.nodes,
            miners,
            simulated.simulator.random.stream("mining"),
        )
        winners = [mining.pick_winner().node_id for _ in range(300)]
        assert winners.count(0) > 200

    def test_poisson_block_production(self):
        simulated = build_ring_network()
        mining = MiningProcess(
            simulated.simulator,
            simulated.nodes,
            equal_hash_power(simulated.node_ids()),
            simulated.simulator.random.stream("mining"),
            block_interval_s=20.0,
        )
        mining.start()
        simulated.simulator.run(until=400.0)
        mining.stop()
        # ~20 expected; accept a generous Poisson range.
        assert 5 <= mining.blocks_mined <= 45

    def test_offline_winner_produces_nothing(self):
        simulated = build_ring_network()
        simulated.network.set_online(0, False)
        mining = MiningProcess(
            simulated.simulator,
            simulated.nodes,
            equal_hash_power([0]),
            simulated.simulator.random.stream("mining"),
        )
        assert mining.mine_one_block(winner_id=0) is None

    def test_invalid_block_interval_rejected(self):
        simulated = build_ring_network()
        with pytest.raises(ValueError):
            MiningProcess(
                simulated.simulator,
                simulated.nodes,
                equal_hash_power([0]),
                simulated.simulator.random.stream("m"),
                block_interval_s=0.0,
            )


class TestDoubleSpend:
    def test_pair_conflicts(self):
        simulated = build_ring_network()
        attacker = DoubleSpendAttacker(simulated.node(0), merchant_address="merchant-addr")
        pair = attacker.build_pair(1000)
        assert pair.victim_tx.conflicts_with(pair.attacker_tx)
        assert pair.victim_tx.txid != pair.attacker_tx.txid

    def test_insufficient_funds_rejected(self):
        simulated = build_ring_network()
        attacker = DoubleSpendAttacker(simulated.node(0), merchant_address="merchant-addr")
        with pytest.raises(ValueError):
            attacker.build_pair(10**15)

    def test_first_seen_rule_splits_network(self):
        simulated = build_ring_network(node_count=12)
        network = simulated.network
        simulator = simulated.simulator
        attacker_node = simulated.node(0)
        attacker = DoubleSpendAttacker(attacker_node, simulated.node(6).keypair.address)
        pair = attacker.build_pair(1000)
        # Inject the two conflicting transactions at opposite sides of the ring.
        simulated.node(6).accept_transaction(pair.victim_tx, origin_peer=None)
        simulated.node(6).announce_transaction(pair.victim_tx.txid)
        simulated.node(0).accept_transaction(pair.attacker_tx, origin_peer=None)
        simulated.node(0).announce_transaction(pair.attacker_tx.txid)
        simulator.run(until=30.0)
        outcome = tally_first_seen(list(simulated.nodes.values()), pair)
        assert outcome.total_deciding_nodes == simulated.node_count
        assert outcome.nodes_first_saw_victim > 0
        assert outcome.nodes_first_saw_attacker > 0
        assert 0.0 < outcome.attacker_share < 1.0

    def test_outcome_success_flag(self):
        outcome = DoubleSpendOutcome(victim_txid="v", attacker_txid="a")
        assert outcome.attack_succeeded is None
        outcome.confirmed_txid = "a"
        assert outcome.attack_succeeded is True
        outcome.confirmed_txid = "v"
        assert outcome.attack_succeeded is False
