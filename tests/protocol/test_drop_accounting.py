"""Regression tests pinning the drop-counter semantics of the network fabric.

A live link implies both endpoints are online: ``connect`` refuses offline
endpoints and ``set_online(False)`` tears down every link before anything
else observes the node as offline.  ``send``/``broadcast``/``multicast``
therefore only ever drop on a *missing connection* at schedule time; the
offline case surfaces as a missing link.  Messages already in flight when an
endpoint goes offline are dropped at delivery time by ``_deliver``.  These
tests pin each of those paths so a future refactor cannot silently change
what ``messages_dropped`` counts.
"""

from repro.protocol.messages import InvMessage, PingMessage


class TestSendDrops:
    def test_send_over_live_link_schedules(self, small_network):
        network = small_network.network
        network.connect(0, 1)
        before = network.messages_dropped
        assert network.send(0, 1, PingMessage(sender=0))
        assert network.messages_dropped == before

    def test_send_without_connection_drops_once(self, small_network):
        network = small_network.network
        before = network.messages_dropped
        assert not network.send(0, 1, PingMessage(sender=0))
        assert network.messages_dropped == before + 1

    def test_send_to_offline_peer_drops_via_missing_link(self, small_network):
        # Going offline tears the link down, so the drop is accounted by the
        # connection check — exactly once, not once per precondition.
        network = small_network.network
        network.connect(0, 1)
        network.set_online(1, False)
        assert 1 not in network.neighbors(0)
        before = network.messages_dropped
        assert not network.send(0, 1, PingMessage(sender=0))
        assert network.messages_dropped == before + 1

    def test_send_from_offline_sender_drops_once(self, small_network):
        network = small_network.network
        network.connect(0, 1)
        network.set_online(0, False)
        before = network.messages_dropped
        assert not network.send(0, 1, PingMessage(sender=0))
        assert network.messages_dropped == before + 1


class TestBroadcastDrops:
    def test_broadcast_reaches_every_neighbor_without_drops(self, small_network):
        network = small_network.network
        for peer in (1, 2, 3):
            network.connect(0, peer)
        before = network.messages_dropped
        sent = network.broadcast(0, InvMessage(sender=0, hashes=("h",)))
        assert sent == 3
        assert network.messages_dropped == before

    def test_broadcast_excluded_peer_is_not_a_drop(self, small_network):
        network = small_network.network
        for peer in (1, 2, 3):
            network.connect(0, peer)
        before = network.messages_dropped
        sent = network.broadcast(0, InvMessage(sender=0, hashes=("h",)), exclude={2})
        assert sent == 2
        assert network.messages_dropped == before

    def test_broadcast_skips_offline_peer_without_counting_a_drop(self, small_network):
        # The offline peer is no longer a neighbour, so it is neither sent to
        # nor counted as a drop: nothing was scheduled towards it.
        network = small_network.network
        for peer in (1, 2, 3):
            network.connect(0, peer)
        network.set_online(2, False)
        before = network.messages_dropped
        sent = network.broadcast(0, InvMessage(sender=0, hashes=("h",)))
        assert sent == 2
        assert network.messages_dropped == before

    def test_broadcast_from_offline_sender_is_a_noop(self, small_network):
        network = small_network.network
        for peer in (1, 2):
            network.connect(0, peer)
        network.set_online(0, False)
        before = network.messages_dropped
        assert network.broadcast(0, InvMessage(sender=0, hashes=("h",))) == 0
        assert network.messages_dropped == before


class TestMulticastDrops:
    def test_multicast_counts_unconnected_peers(self, small_network):
        network = small_network.network
        network.connect(0, 1)
        before = network.messages_dropped
        sent = network.multicast(0, [1, 2, 3], InvMessage(sender=0, hashes=("h",)))
        assert sent == 1
        assert network.messages_dropped == before + 2

    def test_multicast_offline_peer_counts_as_unconnected(self, small_network):
        network = small_network.network
        network.connect(0, 1)
        network.connect(0, 2)
        network.set_online(2, False)
        before = network.messages_dropped
        sent = network.multicast(0, [1, 2], InvMessage(sender=0, hashes=("h",)))
        assert sent == 1
        assert network.messages_dropped == before + 1

    def test_multicast_excluded_peer_is_not_a_drop(self, small_network):
        network = small_network.network
        network.connect(0, 1)
        network.connect(0, 2)
        before = network.messages_dropped
        sent = network.multicast(
            0, [1, 2], InvMessage(sender=0, hashes=("h",)), exclude={2}
        )
        assert sent == 1
        assert network.messages_dropped == before


class TestMidFlightDrops:
    def test_receiver_going_offline_mid_flight_drops_at_delivery(self, small_network):
        network = small_network.network
        simulator = small_network.simulator
        network.connect(0, 1)
        assert network.send(0, 1, PingMessage(sender=0))
        before = network.messages_dropped
        network.set_online(1, False)
        simulator.run(until=5.0)
        assert network.node(1).stats.pings_received == 0
        assert network.messages_dropped == before + 1

    def test_link_torn_down_mid_flight_drops_at_delivery(self, small_network):
        network = small_network.network
        simulator = small_network.simulator
        network.connect(0, 1)
        assert network.send(0, 1, PingMessage(sender=0))
        before = network.messages_dropped
        network.disconnect(0, 1)
        simulator.run(until=5.0)
        assert network.node(1).stats.pings_received == 0
        assert network.messages_dropped == before + 1

    def test_delivery_survives_if_link_restored(self, small_network):
        network = small_network.network
        simulator = small_network.simulator
        network.connect(0, 1)
        assert network.send(0, 1, PingMessage(sender=0))
        before = network.messages_dropped
        simulator.run(until=5.0)
        assert network.node(1).stats.pings_received == 1
        assert network.messages_dropped == before
