"""Tests for transaction/block validation and the mempool."""

import pytest

from repro.protocol.block import Block
from repro.protocol.crypto import KeyPair
from repro.protocol.mempool import Mempool
from repro.protocol.transaction import Transaction, TxInput, TxOutput
from repro.protocol.utxo import UtxoSet
from repro.protocol.validation import (
    TransactionValidator,
    ValidationError,
    VerificationCostModel,
)


def funded_wallet(value=1_000):
    keypair = KeyPair.generate("wallet")
    coinbase = Transaction.coinbase(keypair.address, value)
    utxo = UtxoSet()
    utxo.apply_transaction(coinbase)
    return keypair, coinbase, utxo


class TestTransactionValidation:
    def test_valid_transaction_accepted(self):
        keypair, coinbase, utxo = funded_wallet()
        tx = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("dest", 100)])
        result = TransactionValidator().validate_transaction(tx, utxo)
        assert result.valid
        assert result.error is None
        assert result.verification_cost_s > 0

    def test_coinbase_always_valid(self):
        _, coinbase, utxo = funded_wallet()
        result = TransactionValidator().validate_transaction(coinbase, UtxoSet())
        assert result.valid

    def test_missing_input_rejected(self):
        keypair, coinbase, utxo = funded_wallet()
        tx = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("dest", 100)])
        utxo.remove((coinbase.txid, 0))
        result = TransactionValidator().validate_transaction(tx, utxo)
        assert not result.valid
        assert result.error is ValidationError.MISSING_INPUT

    def test_wrong_owner_rejected(self):
        keypair, coinbase, utxo = funded_wallet()
        thief = KeyPair.generate("thief")
        tx = Transaction.create_signed(thief, [(coinbase.txid, 0, 1000)], [("dest", 100)])
        result = TransactionValidator().validate_transaction(tx, utxo)
        assert not result.valid
        assert result.error is ValidationError.WRONG_OWNER

    def test_bad_signature_rejected(self):
        keypair, coinbase, utxo = funded_wallet()
        good = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("dest", 100)])
        tampered_input = TxInput(
            prev_txid=coinbase.txid,
            prev_index=0,
            public_key=good.inputs[0].public_key,
            signature="0" * 64,
            private_key_hint=good.inputs[0].private_key_hint,
        )
        tampered = Transaction(inputs=(tampered_input,), outputs=good.outputs)
        result = TransactionValidator().validate_transaction(tampered, utxo)
        assert not result.valid
        assert result.error is ValidationError.BAD_SIGNATURE

    def test_overspend_rejected(self):
        keypair, coinbase, utxo = funded_wallet()
        good = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("dest", 100)])
        inflated = Transaction(
            inputs=good.inputs,
            outputs=(TxOutput(value=5_000, address="dest"),),
        )
        result = TransactionValidator().validate_transaction(inflated, utxo)
        assert not result.valid
        assert result.error in (ValidationError.VALUE_OVERSPEND, ValidationError.BAD_SIGNATURE)

    def test_internal_double_spend_rejected(self):
        keypair, coinbase, utxo = funded_wallet()
        # Sign a transaction that lists the same outpoint twice, so the
        # signature itself is consistent and the duplicate-input rule fires.
        doubled = Transaction.create_signed(
            keypair,
            [(coinbase.txid, 0, 1000), (coinbase.txid, 0, 1000)],
            [("dest", 100)],
        )
        result = TransactionValidator().validate_transaction(doubled, utxo)
        assert not result.valid
        assert result.error is ValidationError.DOUBLE_SPEND

    def test_cost_grows_with_ledger_size(self):
        model = VerificationCostModel()
        keypair, coinbase, _ = funded_wallet()
        tx = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("dest", 100)])
        assert model.transaction_cost_s(tx, 100_000) > model.transaction_cost_s(tx, 100)

    def test_cost_grows_with_inputs(self):
        model = VerificationCostModel()
        keypair = KeyPair.generate("w")
        c1 = Transaction.coinbase(keypair.address, 500, tag="1")
        c2 = Transaction.coinbase(keypair.address, 500, tag="2")
        one_input = Transaction.create_signed(keypair, [(c1.txid, 0, 500)], [("d", 100)])
        two_inputs = Transaction.create_signed(
            keypair, [(c1.txid, 0, 500), (c2.txid, 0, 500)], [("d", 600)]
        )
        assert model.transaction_cost_s(two_inputs, 0) > model.transaction_cost_s(one_input, 0)


class TestBlockValidation:
    def test_valid_block_accepted(self):
        keypair, coinbase, utxo = funded_wallet()
        genesis = Block.genesis()
        parent_utxo = UtxoSet()
        block = Block.create(genesis, [coinbase], timestamp=1.0, nonce=0, miner_id=0)
        result = TransactionValidator().validate_block(block, genesis, parent_utxo)
        assert result.valid

    def test_wrong_parent_rejected(self):
        keypair, coinbase, _ = funded_wallet()
        genesis = Block.genesis()
        block1 = Block.create(genesis, [coinbase], timestamp=1.0, nonce=0, miner_id=0)
        other = Transaction.coinbase(keypair.address, 1, tag="other")
        block2 = Block.create(block1, [other], timestamp=2.0, nonce=0, miner_id=0)
        result = TransactionValidator().validate_block(block2, genesis, UtxoSet())
        assert not result.valid
        assert result.error is ValidationError.BAD_PREVIOUS_BLOCK

    def test_block_with_invalid_transaction_rejected(self):
        keypair, coinbase, utxo = funded_wallet()
        genesis = Block.genesis()
        orphan_spend = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("d", 10)])
        block = Block.create(genesis, [orphan_spend], timestamp=1.0, nonce=0, miner_id=0)
        result = TransactionValidator().validate_block(block, genesis, UtxoSet())
        assert not result.valid
        assert result.error is ValidationError.MISSING_INPUT

    def test_block_allows_intra_block_dependencies(self):
        keypair, coinbase, _ = funded_wallet()
        genesis = Block.genesis()
        spend = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("dest", 250)])
        block = Block.create(genesis, [coinbase, spend], timestamp=1.0, nonce=0, miner_id=0)
        result = TransactionValidator().validate_block(block, genesis, UtxoSet())
        assert result.valid


class TestMempool:
    def _signed_pair(self):
        keypair, coinbase, utxo = funded_wallet()
        tx1 = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("merchant", 100)])
        tx2 = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("attacker", 100)])
        return tx1, tx2

    def test_add_and_lookup(self):
        tx1, _ = self._signed_pair()
        pool = Mempool()
        assert pool.add(tx1, arrival_time=1.0)
        assert tx1.txid in pool
        assert pool.get(tx1.txid) is tx1
        assert pool.arrival_time(tx1.txid) == 1.0

    def test_duplicate_add_refused(self):
        tx1, _ = self._signed_pair()
        pool = Mempool()
        assert pool.add(tx1)
        assert not pool.add(tx1)
        assert len(pool) == 1

    def test_first_seen_rule_blocks_conflicts(self):
        tx1, tx2 = self._signed_pair()
        pool = Mempool()
        assert pool.add(tx1)
        assert pool.conflicts(tx2)
        assert pool.conflicting_txid(tx2) == tx1.txid
        assert not pool.add(tx2)

    def test_conflict_cleared_after_removal(self):
        tx1, tx2 = self._signed_pair()
        pool = Mempool()
        pool.add(tx1)
        pool.remove(tx1.txid)
        assert not pool.conflicts(tx2)
        assert pool.add(tx2)

    def test_remove_missing_returns_none(self):
        assert Mempool().remove("nope") is None

    def test_size_limit(self):
        keypair = KeyPair.generate("many")
        pool = Mempool(max_size=2)
        for i in range(3):
            coinbase = Transaction.coinbase(keypair.address, 100, tag=str(i))
            tx = Transaction.create_signed(keypair, [(coinbase.txid, 0, 100)], [("d", 50)])
            pool.add(tx)
        assert len(pool) == 2
        assert pool.is_full()

    def test_invalid_size_limit_rejected(self):
        with pytest.raises(ValueError):
            Mempool(max_size=0)

    def test_remove_confirmed_batch(self):
        keypair = KeyPair.generate("many")
        pool = Mempool()
        txids = []
        for i in range(4):
            coinbase = Transaction.coinbase(keypair.address, 100, tag=str(i))
            tx = Transaction.create_signed(keypair, [(coinbase.txid, 0, 100)], [("d", 50)])
            pool.add(tx)
            txids.append(tx.txid)
        removed = pool.remove_confirmed(set(txids[:2]))
        assert removed == 2
        assert len(pool) == 2

    def test_select_for_block_oldest_first(self):
        keypair = KeyPair.generate("many")
        pool = Mempool()
        expected = []
        for i in range(5):
            coinbase = Transaction.coinbase(keypair.address, 100, tag=str(i))
            tx = Transaction.create_signed(keypair, [(coinbase.txid, 0, 100)], [("d", 50)])
            pool.add(tx, arrival_time=float(i))
            expected.append(tx.txid)
        selected = [tx.txid for tx in pool.select_for_block(3)]
        assert selected == expected[:3]

    def test_select_for_block_zero(self):
        assert Mempool().select_for_block(0) == []

    def test_transactions_iterate_in_arrival_order(self):
        tx1, _ = self._signed_pair()
        pool = Mempool()
        pool.add(tx1, arrival_time=3.0)
        assert [t.txid for t in pool.transactions()] == [tx1.txid]

    def test_clear(self):
        tx1, _ = self._signed_pair()
        pool = Mempool()
        pool.add(tx1)
        pool.clear()
        assert len(pool) == 0
        assert not pool.conflicts(tx1)
