"""Tests for the protocol message vocabulary."""

import pickle

import pytest

from repro.protocol.crypto import KeyPair
from repro.protocol.block import Block
from repro.protocol.messages import (
    AddrMessage,
    BlockMessage,
    BlockTxnMessage,
    ClusterMembersMessage,
    CmpctBlockMessage,
    GetAddrMessage,
    GetBlockTxnMessage,
    GetDataMessage,
    GetHeadersMessage,
    HeadersMessage,
    InvMessage,
    InventoryType,
    JoinAcceptMessage,
    JoinMessage,
    PingMessage,
    PongMessage,
    SHORT_ID_HEX_CHARS,
    TxMessage,
    VerackMessage,
    VersionMessage,
    short_txid,
)
from repro.protocol.transaction import Transaction
from repro.net.message import message_size_bytes


def _sample_block():
    keypair = KeyPair.generate("msg-tests")
    coinbase = Transaction.coinbase(keypair.address, 100, tag="sample")
    return Block.create(
        Block.genesis(), [coinbase], timestamp=1.0, nonce=7, miner_id=3
    )


def _every_message():
    """One populated instance of every concrete message type."""
    keypair = KeyPair.generate("msg-tests")
    tx = Transaction.coinbase(keypair.address, 10, tag="rt")
    block = _sample_block()
    return [
        VersionMessage(sender=1),
        VerackMessage(sender=1),
        PingMessage(sender=1, nonce=9),
        PongMessage(sender=1, nonce=9),
        GetAddrMessage(sender=1),
        AddrMessage(sender=1, addresses=(2, 3)),
        InvMessage(sender=1, inventory_type=InventoryType.BLOCK, hashes=("a", "b")),
        GetDataMessage(sender=1, hashes=("a",)),
        TxMessage(sender=1, transaction=tx),
        BlockMessage(sender=1, block=block),
        CmpctBlockMessage(
            sender=1,
            header=block.header,
            height=block.height,
            short_ids=(short_txid(tx.txid),),
            coinbase=block.transactions[0],
        ),
        GetBlockTxnMessage(sender=1, block_hash=block.block_hash, indexes=(1, 2)),
        BlockTxnMessage(
            sender=1, block_hash=block.block_hash, indexes=(1,), transactions=(tx,)
        ),
        GetHeadersMessage(
            sender=1, locator=(block.block_hash, "0" * 64), stop_hash="f" * 64
        ),
        HeadersMessage(sender=1, headers=(block.header,), heights=(block.height,)),
        JoinMessage(sender=1, measured_rtt_s=0.02),
        JoinAcceptMessage(sender=1, cluster_id=4),
        ClusterMembersMessage(sender=1, cluster_id=4, members=(5, 6)),
    ]


class TestMessageBasics:
    def test_message_ids_are_unique(self):
        a = PingMessage(sender=0)
        b = PingMessage(sender=0)
        assert a.message_id != b.message_id

    def test_commands_match_wire_names(self):
        assert VersionMessage(sender=0).command == "version"
        assert InvMessage(sender=0).command == "inv"
        assert GetDataMessage(sender=0).command == "getdata"
        assert TxMessage(sender=0).command == "tx"
        assert BlockMessage(sender=0).command == "block"
        assert GetHeadersMessage(sender=0).command == "getheaders"
        assert HeadersMessage(sender=0).command == "headers"
        assert JoinMessage(sender=0).command == "join"
        assert JoinAcceptMessage(sender=0).command == "join_accept"
        assert ClusterMembersMessage(sender=0).command == "cluster_members"

    def test_every_command_has_a_wire_size(self):
        for message in (
            VersionMessage(sender=0),
            PingMessage(sender=0),
            InvMessage(sender=0, hashes=("h",)),
            GetDataMessage(sender=0, hashes=("h",)),
            AddrMessage(sender=0, addresses=(1, 2)),
            JoinMessage(sender=0),
            JoinAcceptMessage(sender=0),
            ClusterMembersMessage(sender=0, members=(1, 2, 3)),
            GetHeadersMessage(sender=0, locator=("h",)),
            HeadersMessage(sender=0),
        ):
            assert message_size_bytes(message.command, message.wire_payload()) > 0


class TestWirePayloads:
    def test_inv_payload_is_hash_count(self):
        message = InvMessage(sender=0, hashes=("a", "b", "c"))
        assert message.wire_payload() == 3

    def test_addr_payload_is_address_count(self):
        assert AddrMessage(sender=0, addresses=(1, 2)).wire_payload() == 2

    def test_cluster_members_payload_is_member_count(self):
        assert ClusterMembersMessage(sender=0, members=(1, 2, 3, 4)).wire_payload() == 4

    def test_tx_payload_is_transaction_size(self):
        keypair = KeyPair.generate("w")
        tx = Transaction.coinbase(keypair.address, 10)
        message = TxMessage(sender=0, transaction=tx)
        assert message.wire_payload() == tx.size_bytes
        assert TxMessage(sender=0).wire_payload() is None

    def test_block_payload_is_block_size(self):
        genesis = Block.genesis()
        message = BlockMessage(sender=0, block=genesis)
        assert message.wire_payload() == genesis.size_bytes

    def test_inventory_type_values(self):
        assert InventoryType.TRANSACTION.value == "tx"
        assert InventoryType.BLOCK.value == "block"

    def test_inv_defaults_to_transaction_type(self):
        assert InvMessage(sender=0).inventory_type is InventoryType.TRANSACTION

    def test_cmpctblock_payload_counts_header_shortids_coinbase(self):
        block = _sample_block()
        coinbase = block.transactions[0]
        message = CmpctBlockMessage(
            sender=0,
            header=block.header,
            height=1,
            short_ids=("a" * SHORT_ID_HEX_CHARS,) * 3,
            coinbase=coinbase,
        )
        assert message.wire_payload() == 80 + 3 * 6 + coinbase.size_bytes
        assert message.block_hash == block.block_hash

    def test_cmpctblock_without_header_has_no_hash(self):
        with pytest.raises(ValueError):
            CmpctBlockMessage(sender=0).block_hash

    def test_getblocktxn_payload_is_index_count(self):
        assert GetBlockTxnMessage(sender=0, indexes=(1, 4, 9)).wire_payload() == 3

    def test_blocktxn_payload_is_transaction_bytes(self):
        keypair = KeyPair.generate("w2")
        tx = Transaction.coinbase(keypair.address, 10)
        message = BlockTxnMessage(sender=0, indexes=(1,), transactions=(tx,))
        assert message.wire_payload() == tx.size_bytes

    def test_getheaders_payload_is_locator_length(self):
        message = GetHeadersMessage(sender=0, locator=("a" * 64, "b" * 64))
        assert message.wire_payload() == 2
        # 24-byte envelope + 37 fixed bytes + 32 bytes per locator hash.
        assert message_size_bytes("getheaders", 2) == 24 + 37 + 2 * 32

    def test_headers_payload_is_header_count(self):
        block = _sample_block()
        message = HeadersMessage(
            sender=0, headers=(block.header,), heights=(block.height,)
        )
        assert message.wire_payload() == 1
        # 24-byte envelope + count byte + 81 bytes per header entry.
        assert message_size_bytes("headers", 1) == 24 + 1 + 81

    def test_short_txid_is_fixed_prefix(self):
        txid = "ab" * 32
        assert short_txid(txid) == txid[:SHORT_ID_HEX_CHARS]
        assert len(short_txid(txid)) == SHORT_ID_HEX_CHARS


class TestSerializationRoundTrips:
    """Every message survives the worker-pool trip (pickle) unchanged."""

    @pytest.mark.parametrize(
        "message", _every_message(), ids=lambda m: type(m).__name__
    )
    def test_pickle_round_trip_preserves_identity(self, message):
        restored = pickle.loads(pickle.dumps(message))
        assert restored == message  # field-wise equality (message_id excluded)
        assert restored.message_id == message.message_id
        assert restored.command == message.command
        assert restored.wire_payload() == message.wire_payload()
        assert (
            message_size_bytes(restored.command, restored.wire_payload())
            == message_size_bytes(message.command, message.wire_payload())
        )

    def test_compact_round_trip_reassembles_block(self):
        """The compact message carries everything needed to rebuild the block
        once the short ids are resolved against a mempool."""
        block = _sample_block()
        message = CmpctBlockMessage(
            sender=0,
            header=block.header,
            height=block.height,
            short_ids=tuple(short_txid(tx.txid) for tx in block.transactions[1:]),
            coinbase=block.transactions[0],
        )
        restored = pickle.loads(pickle.dumps(message))
        rebuilt = Block(
            header=restored.header,
            transactions=(restored.coinbase, *block.transactions[1:]),
            height=restored.height,
        )
        assert rebuilt.block_hash == block.block_hash
        assert rebuilt == block
