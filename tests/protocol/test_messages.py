"""Tests for the protocol message vocabulary."""

from repro.protocol.crypto import KeyPair
from repro.protocol.block import Block
from repro.protocol.messages import (
    AddrMessage,
    BlockMessage,
    ClusterMembersMessage,
    GetDataMessage,
    InvMessage,
    InventoryType,
    JoinAcceptMessage,
    JoinMessage,
    PingMessage,
    TxMessage,
    VersionMessage,
)
from repro.protocol.transaction import Transaction
from repro.net.message import message_size_bytes


class TestMessageBasics:
    def test_message_ids_are_unique(self):
        a = PingMessage(sender=0)
        b = PingMessage(sender=0)
        assert a.message_id != b.message_id

    def test_commands_match_wire_names(self):
        assert VersionMessage(sender=0).command == "version"
        assert InvMessage(sender=0).command == "inv"
        assert GetDataMessage(sender=0).command == "getdata"
        assert TxMessage(sender=0).command == "tx"
        assert BlockMessage(sender=0).command == "block"
        assert JoinMessage(sender=0).command == "join"
        assert JoinAcceptMessage(sender=0).command == "join_accept"
        assert ClusterMembersMessage(sender=0).command == "cluster_members"

    def test_every_command_has_a_wire_size(self):
        for message in (
            VersionMessage(sender=0),
            PingMessage(sender=0),
            InvMessage(sender=0, hashes=("h",)),
            GetDataMessage(sender=0, hashes=("h",)),
            AddrMessage(sender=0, addresses=(1, 2)),
            JoinMessage(sender=0),
            JoinAcceptMessage(sender=0),
            ClusterMembersMessage(sender=0, members=(1, 2, 3)),
        ):
            assert message_size_bytes(message.command, message.wire_payload()) > 0


class TestWirePayloads:
    def test_inv_payload_is_hash_count(self):
        message = InvMessage(sender=0, hashes=("a", "b", "c"))
        assert message.wire_payload() == 3

    def test_addr_payload_is_address_count(self):
        assert AddrMessage(sender=0, addresses=(1, 2)).wire_payload() == 2

    def test_cluster_members_payload_is_member_count(self):
        assert ClusterMembersMessage(sender=0, members=(1, 2, 3, 4)).wire_payload() == 4

    def test_tx_payload_is_transaction_size(self):
        keypair = KeyPair.generate("w")
        tx = Transaction.coinbase(keypair.address, 10)
        message = TxMessage(sender=0, transaction=tx)
        assert message.wire_payload() == tx.size_bytes
        assert TxMessage(sender=0).wire_payload() is None

    def test_block_payload_is_block_size(self):
        genesis = Block.genesis()
        message = BlockMessage(sender=0, block=genesis)
        assert message.wire_payload() == genesis.size_bytes

    def test_inventory_type_values(self):
        assert InventoryType.TRANSACTION.value == "tx"
        assert InventoryType.BLOCK.value == "block"

    def test_inv_defaults_to_transaction_type(self):
        assert InvMessage(sender=0).inventory_type is InventoryType.TRANSACTION
