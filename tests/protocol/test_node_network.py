"""Tests for the Bitcoin node relay logic and the P2P network fabric.

These exercise the Fig. 1 relay pattern (INV -> GETDATA -> TX), the first-seen
rule, block relay, churn handling and the traffic counters the overhead
experiment relies on.
"""

import pytest

from repro.protocol.messages import (
    AddrMessage,
    GetAddrMessage,
    GetDataMessage,
    InvMessage,
    InventoryType,
    PingMessage,
    TxMessage,
)
from repro.protocol.node import NodeConfig
from repro.protocol.transaction import Transaction
from repro.workloads.generators import fund_nodes
from repro.workloads.network_gen import NetworkParameters, build_network


def build_connected_network(node_count=12, seed=2, node_config=None):
    """A small fully-built network with a simple ring + chords overlay."""
    params = NetworkParameters(node_count=node_count, seed=seed)
    if node_config is not None:
        params = params.with_overrides(node_config=node_config)
    simulated = build_network(params)
    network = simulated.network
    ids = simulated.node_ids()
    for index, node_id in enumerate(ids):
        network.connect(node_id, ids[(index + 1) % len(ids)])
        network.connect(node_id, ids[(index + 3) % len(ids)])
    fund_nodes(list(simulated.nodes.values()), outputs_per_node=3)
    return simulated


class TestNetworkFabric:
    def test_register_and_lookup(self, small_network):
        network = small_network.network
        assert network.node_count == 30
        assert network.node(0).node_id == 0
        assert 0 in network.node_ids()

    def test_duplicate_registration_rejected(self, small_network):
        with pytest.raises(ValueError):
            small_network.nodes[0].attach(small_network.network)

    def test_connect_creates_bidirectional_link(self, small_network):
        network = small_network.network
        assert network.connect(0, 1)
        assert 1 in network.neighbors(0)
        assert 0 in network.neighbors(1)

    def test_connect_self_refused(self, small_network):
        assert not small_network.network.connect(3, 3)

    def test_connect_duplicate_refused(self, small_network):
        network = small_network.network
        network.connect(0, 1)
        assert not network.connect(1, 0)

    def test_connect_offline_refused(self, small_network):
        network = small_network.network
        network.set_online(5, False)
        assert not network.connect(0, 5)

    def test_connect_counts_handshake_traffic(self, small_network):
        network = small_network.network
        before = network.messages_sent.get("version", 0)
        network.connect(0, 1)
        assert network.messages_sent["version"] == before + 2
        assert network.messages_sent["verack"] == before + 2

    def test_disconnect(self, small_network):
        network = small_network.network
        network.connect(0, 1)
        assert network.disconnect(0, 1)
        assert not network.topology.are_connected(0, 1)
        assert not network.disconnect(0, 1)

    def test_going_offline_tears_down_links(self, small_network):
        network = small_network.network
        network.connect(0, 1)
        network.connect(0, 2)
        network.set_online(0, False)
        assert network.neighbors(0) == []
        assert not network.is_online(0)

    def test_send_without_connection_drops(self, small_network):
        network = small_network.network
        dropped_before = network.messages_dropped
        assert not network.send(0, 1, PingMessage(sender=0))
        assert network.messages_dropped == dropped_before + 1

    def test_send_delivers_after_delay(self, small_network):
        network = small_network.network
        simulator = small_network.simulator
        network.connect(0, 1)
        network.send(0, 1, PingMessage(sender=0, nonce=7))
        assert network.node(1).stats.pings_received == 0
        simulator.run(until=5.0)
        assert network.node(1).stats.pings_received == 1

    def test_ping_gets_pong_reply(self, small_network):
        network = small_network.network
        simulator = small_network.simulator
        network.connect(0, 1)
        network.send(0, 1, PingMessage(sender=0, nonce=7))
        simulator.run(until=5.0)
        assert network.messages_sent["pong"] >= 1

    def test_message_to_node_that_went_offline_is_dropped(self, small_network):
        network = small_network.network
        simulator = small_network.simulator
        network.connect(0, 1)
        network.send(0, 1, PingMessage(sender=0))
        network.set_online(1, False)
        simulator.run(until=5.0)
        assert network.node(1).stats.pings_received == 0

    def test_broadcast_excludes_requested_peers(self, small_network):
        network = small_network.network
        for peer in (1, 2, 3):
            network.connect(0, peer)
        sent = network.broadcast(0, InvMessage(sender=0, hashes=("h",)), exclude={2})
        assert sent == 2

    def test_rtt_measurement_positive_and_accounted(self, small_network):
        network = small_network.network
        before = network.messages_sent.get("ping", 0)
        rtt = network.measure_rtt(0, 1)
        assert rtt > 0
        network.record_ping_exchange(1)
        assert network.messages_sent["ping"] == before + 1

    def test_base_rtt_deterministic(self, small_network):
        network = small_network.network
        assert network.base_rtt(0, 1) == network.base_rtt(0, 1)

    def test_total_counters(self, small_network):
        network = small_network.network
        network.connect(0, 1)
        assert network.total_messages() > 0
        assert network.total_bytes() > 0


class TestTransactionRelay:
    def test_created_transaction_enters_mempool_and_wallet_excludes_spent(self):
        simulated = build_connected_network()
        node = simulated.node(0)
        spendable_before = len(node.spendable_outputs())
        tx = node.create_transaction([("dest", 1000)], broadcast=False)
        assert tx.txid in node.mempool
        assert len(node.spendable_outputs()) == spendable_before - 1

    def test_insufficient_funds_rejected(self):
        simulated = build_connected_network()
        node = simulated.node(0)
        with pytest.raises(ValueError):
            node.create_transaction([("dest", 10**15)])

    def test_transaction_propagates_to_all_nodes(self):
        simulated = build_connected_network()
        node = simulated.node(0)
        tx = node.create_transaction([("dest", 1000)])
        simulated.simulator.run(until=30.0)
        received = [n for n in simulated.nodes.values() if tx.txid in n.known_transactions]
        assert len(received) == simulated.node_count

    def test_inv_getdata_tx_sequence(self):
        simulated = build_connected_network()
        network = simulated.network
        node = simulated.node(0)
        node.create_transaction([("dest", 1000)])
        simulated.simulator.run(until=30.0)
        assert network.messages_sent["inv"] > 0
        assert network.messages_sent["getdata"] > 0
        assert network.messages_sent["tx"] > 0
        # Each node requests the transaction once, so TX deliveries are bounded
        # by the node count (no flooding of full transaction payloads).
        assert network.messages_sent["tx"] <= simulated.node_count

    def test_duplicate_inv_not_rerequested(self):
        simulated = build_connected_network()
        network = simulated.network
        simulator = simulated.simulator
        node = simulated.node(0)
        tx = node.create_transaction([("dest", 1000)], broadcast=False)
        receiver = simulated.node(1)
        network.send(0, 1, InvMessage(sender=0, hashes=(tx.txid,)))
        network.send(0, 1, InvMessage(sender=0, hashes=(tx.txid,)))
        simulator.run(until=10.0)
        assert receiver.stats.duplicate_invs >= 1
        assert receiver.stats.getdata_sent == 1

    def test_invalid_transaction_not_relayed(self):
        simulated = build_connected_network()
        network = simulated.network
        simulator = simulated.simulator
        attacker = simulated.node(0)
        victim_funds = simulated.node(1)
        # Attacker tries to spend an output it does not own.
        stolen = victim_funds.spendable_outputs()[0]
        forged = Transaction.create_signed(attacker.keypair, [stolen], [("dest", 100)])
        network.send(0, 1, TxMessage(sender=0, transaction=forged))
        simulator.run(until=10.0)
        assert forged.txid not in simulated.node(1).mempool
        assert simulated.node(1).stats.transactions_rejected >= 1

    def test_first_seen_rule_across_network(self):
        simulated = build_connected_network()
        node = simulated.node(0)
        tx1 = node.create_transaction([("merchant", 1000)])
        simulated.simulator.run(until=30.0)
        # A conflicting spend of the same output is refused network-wide.
        conflicting = Transaction.create_signed(
            node.keypair,
            [(tx1.inputs[0].prev_txid, tx1.inputs[0].prev_index, 1_000_000)],
            [("attacker", 1000)],
        )
        other = simulated.node(5)
        result = other.accept_transaction(conflicting, origin_peer=None)
        assert not result.valid or conflicting.txid not in other.mempool

    def test_relay_disabled_node_does_not_forward(self):
        config = NodeConfig(relay_transactions=False)
        simulated = build_connected_network(node_config=config)
        node = simulated.node(0)
        tx = node.create_transaction([("dest", 1000)], broadcast=False)
        simulated.network.send(0, simulated.network.neighbors(0)[0], TxMessage(sender=0, transaction=tx))
        simulated.simulator.run(until=10.0)
        received = [n for n in simulated.nodes.values() if tx.txid in n.known_transactions]
        # Only the direct recipient (and the creator) know about it.
        assert len(received) <= 2

    def test_getaddr_returns_addresses(self):
        simulated = build_connected_network()
        network = simulated.network
        simulator = simulated.simulator
        requester = simulated.node(0)
        network.send(0, 1, GetAddrMessage(sender=0))
        simulator.run(until=5.0)
        assert network.messages_sent["addr"] >= 1
        assert len(requester.address_book) >= 1

    def test_addr_message_updates_address_book(self):
        simulated = build_connected_network()
        simulator = simulated.simulator
        network = simulated.network
        network.send(0, 1, AddrMessage(sender=0, addresses=(7, 8, 9)))
        simulator.run(until=5.0)
        assert {7, 8, 9} <= simulated.node(1).address_book

    def test_getdata_for_unknown_hash_sends_nothing(self):
        simulated = build_connected_network()
        network = simulated.network
        simulator = simulated.simulator
        tx_before = network.messages_sent.get("tx", 0)
        network.send(0, 1, GetDataMessage(sender=0, hashes=("deadbeef",)))
        simulator.run(until=5.0)
        assert network.messages_sent.get("tx", 0) == tx_before

    def test_getdata_served_from_best_chain_after_confirmation(self):
        from repro.protocol.mining import MiningProcess, equal_hash_power

        simulated = build_connected_network()
        node = simulated.node(0)
        tx = node.create_transaction([("dest", 700)])
        simulated.simulator.run(until=30.0)
        MiningProcess(
            simulated.simulator,
            simulated.nodes,
            equal_hash_power([0]),
            simulated.simulator.random.stream("mining"),
        ).mine_one_block(winner_id=0)
        simulated.simulator.run(until=90.0)
        assert tx.txid not in node.mempool
        assert node.find_confirmed_transaction(tx.txid) == tx
        before = simulated.network.messages_sent.get("tx", 0)
        simulated.network.send(1, 0, GetDataMessage(sender=1, hashes=(tx.txid,)))
        simulated.simulator.run(until=100.0)
        assert simulated.network.messages_sent["tx"] == before + 1


class TestGetAddrPaths:
    def test_getaddr_reply_capped_at_sample_size(self):
        config = NodeConfig(addr_sample_size=4)
        simulated = build_connected_network(node_config=config)
        responder = simulated.node(1)
        responder.address_book.update(range(2, 12))
        before = set(simulated.node(0).address_book)
        simulated.network.send(0, 1, GetAddrMessage(sender=0))
        simulated.simulator.run(until=5.0)
        # The requester learns at most addr_sample_size new addresses.
        learned = set(simulated.node(0).address_book) - before
        assert 1 <= len(learned) <= 4

    def test_getaddr_reply_excludes_the_requester(self):
        simulated = build_connected_network()
        responder = simulated.node(1)
        responder.address_book.update({0, 5, 6})
        simulated.network.send(0, 1, GetAddrMessage(sender=0))
        simulated.simulator.run(until=5.0)
        assert 0 not in simulated.node(0).address_book

    def test_getaddr_with_empty_address_book_sends_empty_addr(self):
        simulated = build_connected_network()
        responder = simulated.node(1)
        responder.address_book.clear()
        before = simulated.network.messages_sent.get("addr", 0)
        simulated.network.send(0, 1, GetAddrMessage(sender=0))
        simulated.simulator.run(until=5.0)
        assert simulated.network.messages_sent["addr"] == before + 1

    def test_connection_populates_address_books_both_ways(self):
        simulated = build_connected_network()
        assert 1 in simulated.node(0).address_book
        assert 0 in simulated.node(1).address_book


class TestBlockRelay:
    def test_mined_block_propagates(self):
        from repro.protocol.mining import MiningProcess, equal_hash_power

        simulated = build_connected_network()
        miners = equal_hash_power(simulated.node_ids()[:3])
        mining = MiningProcess(
            simulated.simulator,
            simulated.nodes,
            miners,
            simulated.simulator.random.stream("mining"),
        )
        block = mining.mine_one_block(winner_id=0)
        assert block is not None
        simulated.simulator.run(until=60.0)
        heights = {node.blockchain.height for node in simulated.nodes.values()}
        assert heights == {2}  # funding block + mined block everywhere

    def test_block_confirms_pending_transactions(self):
        from repro.protocol.mining import MiningProcess, equal_hash_power

        simulated = build_connected_network()
        node = simulated.node(0)
        tx = node.create_transaction([("dest", 500)])
        simulated.simulator.run(until=30.0)
        mining = MiningProcess(
            simulated.simulator,
            simulated.nodes,
            equal_hash_power([0]),
            simulated.simulator.random.stream("mining"),
        )
        mining.mine_one_block(winner_id=0)
        simulated.simulator.run(until=90.0)
        confirmed = [n for n in simulated.nodes.values() if n.blockchain.contains_transaction(tx.txid)]
        assert len(confirmed) == simulated.node_count
        assert tx.txid not in simulated.node(3).mempool
