"""Tests for fee plumbing, byte-capped block templates and the tip fast path."""

import pytest

from repro.protocol.crypto import KeyPair
from repro.protocol.mempool import Mempool
from repro.protocol.mining import (
    BLOCK_HEADER_BYTES,
    MIN_TX_BYTES,
    BlockTemplate,
    MiningProcess,
    equal_hash_power,
)
from repro.protocol.node import NodeConfig
from repro.protocol.transaction import Transaction
from repro.workloads.generators import fund_nodes
from repro.workloads.network_gen import NetworkParameters, build_network

WALLET = KeyPair.generate("template-wallet")


def fee_tx(index, fee, extra_outputs=1):
    """An independent signed transaction paying ``fee`` satoshi."""
    coinbase = Transaction.coinbase(WALLET.address, 1_000_000, tag=f"tpl-{index}")
    destinations = [(f"dest-{j}", 100) for j in range(extra_outputs)]
    return Transaction.create_signed(
        WALLET, [(coinbase.txid, 0, 1_000_000)], destinations, fee=fee
    )


def filled_pool(fees):
    pool = Mempool()
    txs = []
    for index, fee in enumerate(fees):
        tx = fee_tx(index, fee)
        assert pool.add(tx, arrival_time=float(index), fee=fee)
        txs.append(tx)
    return pool, txs


class TestTransactionFees:
    def test_fee_shrinks_the_change_output(self):
        no_fee = fee_tx(0, 0)
        with_fee = fee_tx(0, 250)
        assert no_fee.total_output_value - with_fee.total_output_value == 250

    def test_zero_fee_body_is_unchanged(self):
        """fee=0 must be byte-identical to the pre-fee encoding — the golden
        fingerprint safety of every existing workload rests on this."""
        assert fee_tx(3, 0).txid == fee_tx(3, 0).txid
        assert fee_tx(3, 0).body() == fee_tx(3, 0).body()

    def test_fee_validation(self):
        coinbase = Transaction.coinbase(WALLET.address, 1_000, tag="v")
        with pytest.raises(ValueError, match="fee"):
            Transaction.create_signed(
                WALLET, [(coinbase.txid, 0, 1_000)], [("dest", 100)], fee=-1
            )
        with pytest.raises(ValueError, match="exceed"):
            Transaction.create_signed(
                WALLET, [(coinbase.txid, 0, 1_000)], [("dest", 900)], fee=200
            )


class TestBlockTemplate:
    def test_orders_by_feerate(self):
        pool, txs = filled_pool([10, 5_000, 100])
        template = BlockTemplate.build(pool, 10)
        assert [tx.txid for tx in template.transactions] == [
            txs[1].txid,
            txs[2].txid,
            txs[0].txid,
        ]
        assert template.total_fees == 5_110
        assert template.total_bytes == sum(tx.size_bytes for tx in txs)
        assert not template.is_full  # no byte budget

    def test_byte_budget_packs_greedily(self):
        pool, txs = filled_pool([10, 5_000, 100])
        tx_bytes = txs[0].size_bytes  # all three are the same shape
        template = BlockTemplate.build(pool, 10, max_bytes=2 * tx_bytes)
        assert [tx.txid for tx in template.transactions] == [txs[1].txid, txs[2].txid]
        assert template.total_fees == 5_100
        assert template.is_full  # MIN_TX_BYTES no longer fits

    def test_count_cap_still_applies(self):
        pool, txs = filled_pool([10, 5_000, 100])
        template = BlockTemplate.build(pool, 1)
        assert [tx.txid for tx in template.transactions] == [txs[1].txid]

    def test_big_tx_is_skipped_not_blocking(self):
        """Greedy packing skips a transaction that would overflow the budget
        and keeps filling with smaller ones behind it."""
        pool = Mempool()
        big = fee_tx(0, 9_000, extra_outputs=3)
        small = fee_tx(1, 10, extra_outputs=1)
        pool.add(big, arrival_time=0.0, fee=9_000)
        pool.add(small, arrival_time=1.0, fee=10)
        budget = small.size_bytes  # too small for big, exactly fits small
        template = BlockTemplate.build(pool, 10, max_bytes=budget)
        assert [tx.txid for tx in template.transactions] == [small.txid]


def build_mining_network(node_count=10, seed=5, **config_kwargs):
    params = NetworkParameters(
        node_count=node_count, seed=seed, node_config=NodeConfig(**config_kwargs)
    )
    simulated = build_network(params)
    ids = simulated.node_ids()
    for index, node_id in enumerate(ids):
        simulated.network.connect(node_id, ids[(index + 1) % len(ids)])
        simulated.network.connect(node_id, ids[(index + 3) % len(ids)])
    fund_nodes(list(simulated.nodes.values()), outputs_per_node=4)
    return simulated


class TestByteCappedMining:
    def make_mining(self, simulated, **kwargs):
        return MiningProcess(
            simulated.simulator,
            simulated.nodes,
            equal_hash_power(simulated.node_ids()),
            simulated.simulator.random.stream("mining"),
            **kwargs,
        )

    def test_capped_block_respects_the_byte_limit(self):
        simulated = build_mining_network()
        miner = simulated.node(0)
        for index in range(4):
            tx = miner.create_transaction([("dest", 100)], broadcast=False, fee=100 * (index + 1))
        cap = BLOCK_HEADER_BYTES + 44 + 2 * tx.size_bytes + MIN_TX_BYTES - 1
        mining = self.make_mining(simulated, max_block_bytes=cap)
        block = mining.mine_one_block(winner_id=0)
        assert block is not None
        assert block.size_bytes <= cap
        assert len(block.transactions) == 3  # coinbase + the two that fit
        assert mining.full_blocks_mined == 1
        # The two highest-fee transactions were chosen.
        assert mining.total_fees_collected == 400 + 300

    def test_uncapped_mining_collects_fees_without_full_blocks(self):
        simulated = build_mining_network()
        miner = simulated.node(0)
        for index in range(3):
            miner.create_transaction([("dest", 100)], broadcast=False, fee=50)
        mining = self.make_mining(simulated)
        assert mining.mine_one_block(winner_id=0) is not None
        assert mining.full_blocks_mined == 0
        assert mining.total_fees_collected == 150

    def test_cap_must_exceed_the_header(self):
        simulated = build_mining_network()
        with pytest.raises(ValueError, match="max_block_bytes"):
            self.make_mining(simulated, max_block_bytes=BLOCK_HEADER_BYTES)


class TestTipExtensionFastPath:
    def test_incremental_utxo_matches_full_rebuild(self):
        """After a run of tip extensions the fast path's incrementally-applied
        UTXO view must equal a from-genesis rebuild on every node."""
        simulated = build_mining_network()
        mining = MiningProcess(
            simulated.simulator,
            simulated.nodes,
            equal_hash_power(simulated.node_ids()),
            simulated.simulator.random.stream("mining"),
        )
        for _ in range(4):
            creator = simulated.node(0)
            creator.create_transaction([("dest", 100)], fee=25)
            simulated.simulator.run(until=simulated.simulator.now + 5.0)
            assert mining.mine_one_block() is not None
            simulated.simulator.run(until=simulated.simulator.now + 30.0)
        for node in simulated.nodes.values():
            rebuilt = node.blockchain.utxo_set()
            incremental = {entry.outpoint: entry.value for entry in node.utxo.entries()}
            expected = {entry.outpoint: entry.value for entry in rebuilt.entries()}
            assert incremental == expected
            assert node.blockchain.height >= 4
