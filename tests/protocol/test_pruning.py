"""Tests for in-run stale-state pruning (``NodeConfig.prune_depth``).

Pruning drops per-node inventory bookkeeping about blocks buried deep on the
best chain (and the confirmed transactions inside them) while keeping the
chain itself intact.  These tests pin the contract: off by default, buried
state removed and recent state kept when enabled, genesis never pruned, and a
late INV for a pruned hash suppressed via the chain index instead of
triggering a spurious GETDATA.
"""

import pytest

from repro.protocol.block import Block
from repro.protocol.crypto import KeyPair
from repro.protocol.messages import InvMessage, InventoryType
from repro.protocol.node import NodeConfig
from repro.protocol.transaction import Transaction
from repro.workloads.network_gen import NetworkParameters, build_network


def build_pair(prune_depth=None):
    """A two-node connected network, node 0 under test."""
    params = NetworkParameters(
        node_count=2, seed=1, node_config=NodeConfig(prune_depth=prune_depth)
    )
    simulated = build_network(params)
    simulated.network.connect(0, 1)
    return simulated


def extend_chain(node, blocks):
    """Feed ``blocks`` new valid coinbase-only blocks to ``node``.

    Each block's transactions are also registered in the node's inventory
    maps first, as if they had been relayed before being mined — that is the
    state pruning is supposed to reclaim.
    """
    miner = KeyPair.generate("pruning-miner")
    accepted = []
    for index in range(blocks):
        parent = node.blockchain.tip
        coinbase = Transaction.coinbase(
            miner.address, 50, tag=f"prune-cb-{parent.height}-{index}"
        )
        node.known_transactions.add(coinbase.txid)
        node.transaction_first_seen_times[coinbase.txid] = 0.5
        node.transaction_accept_times[coinbase.txid] = 1.0
        block = Block.create(
            parent, [coinbase], timestamp=float(index + 1), nonce=index, miner_id=1
        )
        assert node.accept_block(block, origin_peer=None)
        accepted.append(block)
    return accepted


class TestConfigValidation:
    def test_default_is_disabled(self):
        assert NodeConfig().prune_depth is None

    @pytest.mark.parametrize("depth", [0, -1])
    def test_non_positive_depth_rejected(self, depth):
        with pytest.raises(ValueError, match="prune_depth"):
            NodeConfig(prune_depth=depth)

    def test_depth_one_accepted(self):
        assert NodeConfig(prune_depth=1).prune_depth == 1


class TestPruningDisabled:
    def test_no_state_removed_without_prune_depth(self):
        simulated = build_pair(prune_depth=None)
        node = simulated.node(0)
        blocks = extend_chain(node, 5)
        assert node.stats.state_prunes == 0
        assert node.stats.pruned_inventory_entries == 0
        for block in blocks:
            assert block.block_hash in node.known_blocks
            for txid in block.txids:
                assert txid in node.known_transactions
                assert txid in node.transaction_first_seen_times
                assert txid in node.transaction_accept_times


class TestPruningEnabled:
    def test_buried_state_removed_recent_kept(self):
        simulated = build_pair(prune_depth=2)
        node = simulated.node(0)
        blocks = extend_chain(node, 6)
        # Height 6, depth 2 -> heights 1..4 pruned, 5..6 retained.
        buried, recent = blocks[:4], blocks[4:]
        for block in buried:
            assert block.block_hash not in node.known_blocks
            for txid in block.txids:
                assert txid not in node.known_transactions
                assert txid not in node.transaction_first_seen_times
                assert txid not in node.transaction_accept_times
        for block in recent:
            assert block.block_hash in node.known_blocks
            for txid in block.txids:
                assert txid in node.known_transactions
        assert node.stats.state_prunes > 0
        # 1 block hash + 1 known txid + 2 time records per buried block.
        assert node.stats.pruned_inventory_entries == 4 * len(buried)

    def test_genesis_never_pruned(self):
        simulated = build_pair(prune_depth=1)
        node = simulated.node(0)
        extend_chain(node, 8)
        assert node.blockchain.genesis.block_hash in node.known_blocks

    def test_chain_itself_retained(self):
        simulated = build_pair(prune_depth=1)
        node = simulated.node(0)
        blocks = extend_chain(node, 5)
        for block in blocks:
            assert node.blockchain.has_block(block.block_hash)

    def test_sweep_is_incremental(self):
        simulated = build_pair(prune_depth=1)
        node = simulated.node(0)
        extend_chain(node, 4)
        assert node._pruned_height == node.blockchain.height - 1
        entries_so_far = node.stats.pruned_inventory_entries
        extend_chain(node, 1)
        # One more block buried -> exactly one more sweep over one height.
        assert node.stats.pruned_inventory_entries == entries_so_far + 4


class TestPrunedInvSuppression:
    @staticmethod
    def drain(simulated):
        """Let the announce/getdata traffic from chain building settle."""
        simulated.simulator.run(until=100.0)

    def test_inv_for_pruned_tx_sends_no_getdata(self):
        simulated = build_pair(prune_depth=1)
        node = simulated.node(0)
        blocks = extend_chain(node, 4)
        self.drain(simulated)
        pruned_txid = next(iter(blocks[0].txids))
        assert pruned_txid not in node.known_transactions
        before = node.stats.getdata_sent
        simulated.network.send(
            1,
            0,
            InvMessage(
                sender=1,
                inventory_type=InventoryType.TRANSACTION,
                hashes=(pruned_txid,),
            ),
        )
        simulated.simulator.run(until=200.0)
        assert node.stats.getdata_sent == before
        assert node.stats.duplicate_invs >= 1
        # The pruned tx must not re-enter the first-seen map.
        assert pruned_txid not in node.transaction_first_seen_times

    def test_inv_for_pruned_block_sends_no_getdata(self):
        simulated = build_pair(prune_depth=1)
        node = simulated.node(0)
        blocks = extend_chain(node, 4)
        self.drain(simulated)
        pruned_hash = blocks[0].block_hash
        assert pruned_hash not in node.known_blocks
        before = simulated.network.messages_sent["getdata"]
        simulated.network.send(
            1,
            0,
            InvMessage(
                sender=1, inventory_type=InventoryType.BLOCK, hashes=(pruned_hash,)
            ),
        )
        simulated.simulator.run(until=200.0)
        assert simulated.network.messages_sent["getdata"] == before

    def test_inv_for_truly_unknown_block_still_requested(self):
        simulated = build_pair(prune_depth=1)
        node = simulated.node(0)
        extend_chain(node, 4)
        self.drain(simulated)
        before = simulated.network.messages_sent["getdata"]
        simulated.network.send(
            1,
            0,
            InvMessage(sender=1, inventory_type=InventoryType.BLOCK, hashes=("f" * 64,)),
        )
        simulated.simulator.run(until=200.0)
        assert simulated.network.messages_sent["getdata"] == before + 1
