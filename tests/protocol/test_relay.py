"""Tests for the pluggable relay strategies (flood / compact / push /
adaptive / headers).

Covers the strategy registry, compact-block reconstruction (mempool hit,
GETBLOCKTXN round-trip, timeout fallback, Merkle-mismatch fallback),
unsolicited cluster push, adaptive neighbour-scored fan-out, headers-first
sync, the cross-peer GETDATA dedup with timeout-based retry, and the bounded
orphan-block pool.
"""

import pytest

from repro.protocol.block import Block
from repro.protocol.messages import (
    BlockMessage,
    CmpctBlockMessage,
    HeadersMessage,
    InvMessage,
    InventoryType,
    short_txid,
)
from repro.protocol.mining import MiningProcess, equal_hash_power
from repro.protocol.node import NodeConfig
from repro.protocol.relay import (
    RELAY_NAMES,
    RELAY_STRATEGIES,
    AdaptiveRelay,
    CompactBlockRelay,
    FloodRelay,
    HeadersFirstRelay,
    PushRelay,
    _Reconstruction,
    build_relay_strategy,
    validate_relay_name,
)
from repro.protocol.transaction import Transaction
from repro.workloads.generators import fund_nodes
from repro.workloads.network_gen import NetworkParameters, build_network

FAKE_HASH = "f" * 64


def build_ring(node_count=10, seed=2, relay="flood", **config_kwargs):
    """A small funded network wired as a ring with chords."""
    config = NodeConfig(relay_strategy=relay, **config_kwargs)
    params = NetworkParameters(node_count=node_count, seed=seed, node_config=config)
    simulated = build_network(params)
    network = simulated.network
    ids = simulated.node_ids()
    for index, node_id in enumerate(ids):
        network.connect(node_id, ids[(index + 1) % len(ids)])
        network.connect(node_id, ids[(index + 3) % len(ids)])
    fund_nodes(list(simulated.nodes.values()), outputs_per_node=3)
    return simulated


def mine_at(simulated, winner_id):
    """Mine one block at ``winner_id`` from its own mempool."""
    mining = MiningProcess(
        simulated.simulator,
        simulated.nodes,
        equal_hash_power(simulated.node_ids()),
        simulated.simulator.random.stream("mining"),
    )
    block = mining.mine_one_block(winner_id=winner_id)
    assert block is not None
    return block


class TestRegistry:
    def test_relay_names(self):
        assert RELAY_NAMES == ("flood", "compact", "push", "adaptive", "headers")
        assert set(RELAY_STRATEGIES) == set(RELAY_NAMES)

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown relay strategy"):
            validate_relay_name("gossip")

    def test_node_builds_configured_strategy(self):
        for name, cls in (
            ("flood", FloodRelay),
            ("compact", CompactBlockRelay),
            ("push", PushRelay),
            ("adaptive", AdaptiveRelay),
            ("headers", HeadersFirstRelay),
        ):
            simulated = build_network(
                NetworkParameters(node_count=2, seed=1, node_config=NodeConfig(relay_strategy=name))
            )
            assert type(simulated.node(0).relay) is cls
            assert simulated.node(0).relay.node is simulated.node(0)

    def test_unknown_strategy_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown relay strategy"):
            build_network(
                NetworkParameters(
                    node_count=2, seed=1, node_config=NodeConfig(relay_strategy="bogus")
                )
            )

    def test_build_relay_strategy_binds_node(self):
        simulated = build_network(NetworkParameters(node_count=2, seed=1))
        strategy = build_relay_strategy("compact", simulated.node(1))
        assert isinstance(strategy, CompactBlockRelay)
        assert strategy.node is simulated.node(1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NodeConfig(getdata_retry_s=0.0)
        with pytest.raises(ValueError):
            NodeConfig(max_orphan_blocks=0)
        with pytest.raises(ValueError):
            NodeConfig(mempool_max_size=0)


class TestCompactRelay:
    def test_block_reconstructed_from_mempool_without_fetch(self):
        simulated = build_ring(relay="compact")
        tx = simulated.node(0).create_transaction([("dest", 500)])
        simulated.simulator.run(until=30.0)  # tx floods to every mempool
        mine_at(simulated, 0)
        simulated.simulator.run(until=90.0)
        network = simulated.network
        assert all(n.blockchain.height == 2 for n in simulated.nodes.values())
        assert all(n.blockchain.contains_transaction(tx.txid) for n in simulated.nodes.values())
        assert network.messages_sent["cmpctblock"] > 0
        assert network.messages_sent.get("block", 0) == 0
        assert network.messages_sent.get("getblocktxn", 0) == 0
        reconstructed = sum(n.stats.compact_blocks_reconstructed for n in simulated.nodes.values())
        assert reconstructed == simulated.node_count - 1

    def test_missing_transactions_fetched_with_getblocktxn(self):
        simulated = build_ring(relay="compact")
        # The transaction stays local to the miner: nobody else can
        # reconstruct the block without the GETBLOCKTXN round-trip.
        tx = simulated.node(0).create_transaction([("dest", 500)], broadcast=False)
        mine_at(simulated, 0)
        simulated.simulator.run(until=90.0)
        network = simulated.network
        assert all(n.blockchain.height == 2 for n in simulated.nodes.values())
        assert all(n.blockchain.contains_transaction(tx.txid) for n in simulated.nodes.values())
        assert network.messages_sent["getblocktxn"] > 0
        assert network.messages_sent["blocktxn"] > 0
        fetched = sum(n.stats.compact_txs_requested for n in simulated.nodes.values())
        assert fetched >= simulated.node_count - 1

    def test_coinbase_only_block_needs_no_fetch(self):
        simulated = build_ring(relay="compact")
        mine_at(simulated, 3)
        simulated.simulator.run(until=90.0)
        assert all(n.blockchain.height == 2 for n in simulated.nodes.values())
        assert simulated.network.messages_sent.get("getblocktxn", 0) == 0

    def test_merkle_mismatch_falls_back_to_full_block(self):
        simulated = build_ring(relay="compact")
        receiver = simulated.node(1)
        block = mine_at(simulated, 0)
        # Corrupt a reconstruction slot: a short-id collision picked the
        # wrong transaction, which only the Merkle check can catch.
        wrong = Transaction.coinbase(receiver.keypair.address, 7, tag="wrong")
        strategy = receiver.relay
        strategy._complete(
            block.block_hash,
            block.header,
            block.height,
            [block.transactions[0], wrong],
            origin=0,
        )
        assert receiver.stats.compact_fallbacks == 1
        assert block.block_hash in strategy.pending_block_requests
        simulated.simulator.run(until=60.0)
        # The fallback GETDATA fetched the real block from the miner.
        assert receiver.blockchain.has_block(block.block_hash)

    def test_flood_node_fetches_full_block_on_cmpctblock(self):
        """Graceful interop: a flood node treats CMPCTBLOCK as an announcement."""
        simulated = build_ring(relay="flood")
        block = mine_at(simulated, 0)
        message = CmpctBlockMessage(
            sender=0,
            header=block.header,
            height=block.height,
            short_ids=tuple(short_txid(tx.txid) for tx in block.transactions[1:]),
            coinbase=block.transactions[0],
        )
        network = simulated.network
        network.send(0, 1, message)
        simulated.simulator.run(until=30.0)
        assert simulated.node(1).blockchain.has_block(block.block_hash)

    def test_reconstruction_state_dropped_on_offline(self):
        simulated = build_ring(relay="compact")
        strategy = simulated.node(2).relay
        strategy._reconstructions["deadbeef"] = _Reconstruction(
            header=None, height=1, slots=[None], origin=0
        )
        simulated.network.set_online(2, False)
        assert not strategy._reconstructions

    def test_stale_reconstruction_retried_from_new_announcer(self):
        """A GETBLOCKTXN round-trip that never completes (the serving peer
        churned away) must not suppress later announcements forever."""
        simulated = build_ring(relay="compact", getdata_retry_s=5.0)
        receiver = simulated.node(1)
        # The block's transaction is unknown to the receiver, forcing the
        # GETBLOCKTXN round-trip.
        simulated.node(0).create_transaction([("dest", 500)], broadcast=False)
        block = mine_at(simulated, 0)
        message = CmpctBlockMessage(
            sender=0,
            header=block.header,
            height=block.height,
            short_ids=tuple(short_txid(tx.txid) for tx in block.transactions[1:]),
            coinbase=block.transactions[0],
        )
        # First announcement arrives from a peer that will never answer the
        # fetch (node 9 does not have the block, and is not even connected to
        # the receiver, so the timer's fallback GETDATA dies silently too).
        receiver.relay.handle_cmpct_block(9, message)
        assert block.block_hash in receiver.relay._reconstructions
        # A fresh announcement within the timeout is suppressed...
        receiver.relay.handle_cmpct_block(0, message)
        assert receiver.stats.getdata_retries == 0
        # The timeout timer fires at +5s and falls back to a full-block
        # GETDATA aimed at the dead announcer; once THAT request has gone
        # stale as well, a new announcement takes it over.
        simulated.simulator.run(until=simulated.simulator.now + 12.0)
        assert block.block_hash not in receiver.relay._reconstructions
        receiver.relay.handle_cmpct_block(0, message)
        assert receiver.stats.getdata_retries == 1
        simulated.simulator.run(until=simulated.simulator.now + 30.0)
        assert receiver.blockchain.has_block(block.block_hash)

    def test_unanswered_getblocktxn_times_out_to_full_fetch(self):
        """Regression: a server that silently cannot answer a GETBLOCKTXN
        (it lost the block) used to leave the requester's reconstruction
        stalled and leaked forever; now a timer mirrors the flood GETDATA
        retry — the stale reconstruction is dropped and a full-block GETDATA
        goes out in its place."""
        simulated = build_ring(relay="compact", getdata_retry_s=5.0)
        network = simulated.network
        receiver = simulated.node(1)
        # The block's transaction is unknown to the receiver, forcing the
        # GETBLOCKTXN round-trip.
        simulated.node(0).create_transaction([("dest", 500)], broadcast=False)
        block = mine_at(simulated, 0)
        message = CmpctBlockMessage(
            sender=4,
            header=block.header,
            height=block.height,
            short_ids=tuple(short_txid(tx.txid) for tx in block.transactions[1:]),
            coinbase=block.transactions[0],
        )
        # Announced by neighbour 4, which does not have the block yet: the
        # GETBLOCKTXN it receives is silently unanswerable, and the in-flight
        # reconstruction suppresses every real announcement that follows.
        receiver.relay.handle_cmpct_block(4, message)
        assert block.block_hash in receiver.relay._reconstructions
        getdata_before = network.messages_sent.get("getdata", 0)
        simulated.simulator.run(until=simulated.simulator.now + 30.0)
        # The timer fired: reconstruction dropped, full fetch issued — and by
        # then node 4 had the block, so the fallback actually completed it.
        assert receiver.stats.compact_txn_timeouts == 1
        assert receiver.stats.compact_fallbacks == 1
        assert block.block_hash not in receiver.relay._reconstructions
        assert network.messages_sent["getdata"] == getdata_before + 1
        assert receiver.blockchain.has_block(block.block_hash)
        assert receiver.blockchain.height == 2

    def test_completed_reconstruction_cancels_timeout(self):
        """The fallback timer must not fire after a normal completion."""
        simulated = build_ring(relay="compact", getdata_retry_s=5.0)
        receiver = simulated.node(1)
        simulated.node(0).create_transaction([("dest", 500)], broadcast=False)
        mine_at(simulated, 0)
        simulated.simulator.run(until=90.0)
        assert all(n.blockchain.height == 2 for n in simulated.nodes.values())
        assert all(n.stats.compact_txn_timeouts == 0 for n in simulated.nodes.values())
        assert receiver.stats.compact_fallbacks == 0


class TestPushRelay:
    def test_cluster_links_get_full_block_others_get_inv(self):
        config = NodeConfig(relay_strategy="push")
        params = NetworkParameters(node_count=6, seed=3, node_config=config)
        simulated = build_network(params)
        network = simulated.network
        # 0-1 is an intra-cluster link, 0-2 is not.
        network.connect(0, 1, is_cluster_link=True)
        network.connect(0, 2)
        network.connect(1, 2)
        fund_nodes(list(simulated.nodes.values()), outputs_per_node=2)
        block = mine_at(simulated, 0)
        simulated.simulator.run(until=60.0)
        assert simulated.node(0).stats.blocks_pushed >= 1
        assert network.messages_sent["block"] >= 1
        assert network.messages_sent["inv"] >= 1
        assert simulated.node(1).blockchain.has_block(block.block_hash)
        assert simulated.node(2).blockchain.has_block(block.block_hash)

    def test_without_cluster_links_degenerates_to_flood(self):
        pushed = build_ring(relay="push", seed=4)
        flooded = build_ring(relay="flood", seed=4)
        for simulated in (pushed, flooded):
            mine_at(simulated, 0)
            simulated.simulator.run(until=90.0)
        assert dict(pushed.network.messages_sent) == dict(flooded.network.messages_sent)
        assert all(n.stats.blocks_pushed == 0 for n in pushed.nodes.values())


class TestAdaptiveRelay:
    def dense_ring(self, **config_kwargs):
        """Ring with i+1/i+2/i+3 chords (degree 6): enough redundant INV
        traffic per relay wave for the duplicate-run narrowing to trigger."""
        config = NodeConfig(relay_strategy="adaptive", **config_kwargs)
        params = NetworkParameters(node_count=10, seed=2, node_config=config)
        simulated = build_network(params)
        network = simulated.network
        ids = simulated.node_ids()
        for index, node_id in enumerate(ids):
            for offset in (1, 2, 3):
                network.connect(node_id, ids[(index + offset) % len(ids)])
        fund_nodes(list(simulated.nodes.values()), outputs_per_node=3)
        return simulated

    def test_starts_in_full_flood(self):
        simulated = build_ring(relay="adaptive")
        strategy = simulated.node(0).relay
        assert strategy._fanout is None
        assert strategy.effective_fanout() == len(
            simulated.network.neighbors(0)
        )

    def test_narrows_under_redundant_traffic(self):
        simulated = self.dense_ring()
        for creator in (0, 4, 8, 2):
            simulated.node(creator).create_transaction([("dest", 100)])
            simulated.simulator.run(until=simulated.simulator.now + 30.0)
        nodes = simulated.nodes.values()
        narrowed = sum(n.stats.adaptive_fanout_narrowed for n in nodes)
        assert narrowed > 0
        # At least one node runs a fan-out below its degree now, and the
        # width changes were recorded over time.
        assert any(
            n.relay._fanout is not None
            and n.relay.effective_fanout() < len(simulated.network.neighbors(n.node_id))
            for n in nodes
        )
        assert any(n.relay.fanout_history for n in nodes)
        # Relay still converges: every mempool holds all four transactions.
        assert all(len(n.mempool) == 4 for n in nodes)

    def test_scores_novelty_first_delivery_and_latency(self):
        simulated = build_ring(relay="adaptive")
        network = simulated.network
        node = simulated.node(0)
        tx = simulated.node(1).create_transaction([("dest", 100)], broadcast=False)
        network.send(
            1,
            0,
            InvMessage(
                sender=1,
                inventory_type=InventoryType.TRANSACTION,
                hashes=(tx.txid,),
            ),
        )
        simulated.simulator.run(until=30.0)
        score = node.relay.scores[1]
        assert score.novel_invs == 1
        assert score.first_deliveries == 1
        assert score.latency_samples == 1
        assert score.latency_ewma_s > 0.0
        assert tx.txid in node.mempool

    def test_stale_request_widens_fanout(self):
        simulated = build_ring(relay="adaptive", getdata_retry_s=5.0)
        network = simulated.network
        node = simulated.node(0)
        node.relay._fanout = 3  # pretend earlier narrowing happened
        network.send(
            1,
            0,
            InvMessage(sender=1, inventory_type=InventoryType.BLOCK, hashes=(FAKE_HASH,)),
        )
        simulated.simulator.run(until=2.0)
        # Fresh in-flight: suppressed, no widening.
        network.send(
            3,
            0,
            InvMessage(sender=3, inventory_type=InventoryType.BLOCK, hashes=(FAKE_HASH,)),
        )
        simulated.simulator.run(until=4.0)
        assert node.stats.adaptive_fanout_widened == 0
        # Stale in-flight: retried from the new announcer AND widened.
        simulated.simulator.run(until=10.0)
        network.send(
            3,
            0,
            InvMessage(sender=3, inventory_type=InventoryType.BLOCK, hashes=(FAKE_HASH,)),
        )
        simulated.simulator.run(until=12.0)
        assert node.stats.getdata_retries == 1
        assert node.stats.adaptive_fanout_widened == 1
        assert node.relay._fanout == 4

    def test_targets_are_top_ranked_plus_random_extra(self):
        simulated = build_ring(relay="adaptive")
        node = simulated.node(0)
        strategy = node.relay
        neighbours = simulated.network.neighbors(0)
        assert len(neighbours) == 4
        best = neighbours[0]
        strategy._score(best).first_deliveries = 5
        strategy._fanout = 2
        targets = strategy._relay_targets(None)
        assert len(targets) == 3  # two scored peers + one random extra
        assert set(targets) <= set(neighbours)
        assert best in targets

    def test_adaptive_state_dropped_on_offline(self):
        simulated = build_ring(relay="adaptive")
        strategy = simulated.node(2).relay
        strategy._probes["aa"] = (1, 0.0)
        strategy._score(1).novel_invs = 3
        strategy._fanout = 3
        strategy._duplicate_run = 2
        simulated.network.set_online(2, False)
        assert not strategy._probes
        assert not strategy.scores
        assert strategy._fanout is None
        assert strategy._duplicate_run == 0

    def test_block_propagation_converges(self):
        simulated = build_ring(relay="adaptive")
        block = mine_at(simulated, 0)
        simulated.simulator.run(until=90.0)
        assert all(
            n.blockchain.has_block(block.block_hash) for n in simulated.nodes.values()
        )


class TestHeadersRelay:
    def two_nodes(self, seed=5, **config_kwargs):
        config = NodeConfig(relay_strategy="headers", **config_kwargs)
        params = NetworkParameters(node_count=2, seed=seed, node_config=config)
        simulated = build_network(params)
        fund_nodes(list(simulated.nodes.values()), outputs_per_node=2)
        return simulated

    def test_blocks_propagate_via_headers_announcements(self):
        simulated = build_ring(relay="headers")
        block = mine_at(simulated, 0)
        simulated.simulator.run(until=90.0)
        network = simulated.network
        assert all(n.blockchain.height == 2 for n in simulated.nodes.values())
        assert network.messages_sent["headers"] > 0
        assert network.messages_sent["block"] >= simulated.node_count - 1

    def test_multi_block_gap_filled_with_one_getheaders_roundtrip(self):
        """A node several blocks behind catches up with one GETHEADERS and
        one batched body GETDATA — not a per-orphan parent walk."""
        simulated = self.two_nodes()
        network = simulated.network
        miner = simulated.node(0)
        for _ in range(3):
            mine_at(simulated, 0)  # no connections yet: announcements go nowhere
        network.connect(0, 1)
        miner.announce_block(miner.blockchain.tip.block_hash)
        simulated.simulator.run(until=60.0)
        behind = simulated.node(1)
        assert behind.blockchain.tip.block_hash == miner.blockchain.tip.block_hash
        assert network.messages_sent["getheaders"] == 1
        assert behind.stats.getheaders_sent == 1
        assert behind.stats.header_bodies_requested == 3
        # All three bodies went out in ONE batched GETDATA.
        assert network.messages_sent["getdata"] == 1

    def test_resync_on_reconnect_uses_getheaders(self):
        simulated = self.two_nodes(seed=6, resync_on_reconnect=True)
        network = simulated.network
        miner = simulated.node(0)
        for _ in range(2):
            mine_at(simulated, 0)
        network.connect(0, 1)
        simulated.simulator.run(until=60.0)
        behind = simulated.node(1)
        assert behind.blockchain.tip.block_hash == miner.blockchain.tip.block_hash
        # Both endpoints asked the other for headers on connect.
        assert behind.stats.getheaders_sent == 1
        assert miner.stats.getheaders_sent == 1
        assert behind.stats.reconnect_syncs >= 1
        assert network.messages_sent["getheaders"] == 2

    def test_flood_node_fetches_body_on_headers_announcement(self):
        """Graceful interop: a flood node treats HEADERS as an announcement."""
        config = NodeConfig()  # flood
        simulated = build_network(
            NetworkParameters(node_count=2, seed=7, node_config=config)
        )
        fund_nodes(list(simulated.nodes.values()), outputs_per_node=2)
        block = mine_at(simulated, 0)
        simulated.network.connect(0, 1)
        simulated.network.send(
            0,
            1,
            HeadersMessage(sender=0, headers=(block.header,), heights=(block.height,)),
        )
        simulated.simulator.run(until=30.0)
        assert simulated.node(1).blockchain.has_block(block.block_hash)

    def test_headers_state_dropped_on_offline(self):
        simulated = build_ring(relay="headers")
        strategy = simulated.node(2).relay
        strategy._pending_getheaders[1] = 0.0
        strategy._header_heights["aa"] = 5
        strategy._body_queue.append(("aa", 1))
        simulated.network.set_online(2, False)
        assert not strategy._pending_getheaders
        assert not strategy._header_heights
        assert not strategy._body_queue

    def test_block_locator_is_tip_first_exponential_genesis_last(self):
        simulated = self.two_nodes(seed=8)
        for _ in range(12):
            mine_at(simulated, 0)
        node = simulated.node(0)
        chain = node.blockchain.best_chain()
        locator = node.relay.block_locator()
        assert locator[0] == chain[-1].block_hash
        assert locator[-1] == chain[0].block_hash
        assert len(locator) < len(chain)  # exponential spacing kicked in
        heights = {b.block_hash: b.height for b in chain}
        spaced = [heights[h] for h in locator]
        assert spaced == sorted(spaced, reverse=True)


class TestOrphanParentFetchDedup:
    def orphan_sibling(self, index, parent_hash):
        coinbase = Transaction.coinbase("miner-address", 100, tag=f"sib-{index}")
        return Block.create(
            previous=_FakeParent(parent_hash, 4),
            transactions=(coinbase,),
            timestamp=1.0,
            nonce=index,
            miner_id=9,
        )

    def test_orphan_burst_sends_one_parent_getdata(self):
        """Regression: every orphan on the same missing branch used to
        re-send the parent GETDATA, bypassing the pending-request dedup."""
        simulated = build_ring()
        network = simulated.network
        node = simulated.node(0)
        before = network.messages_sent.get("getdata", 0)
        siblings = [self.orphan_sibling(i, FAKE_HASH) for i in range(4)]
        for block in siblings:
            node.accept_block(block, origin_peer=1)
        assert network.messages_sent["getdata"] == before + 1
        assert node.stats.getdata_saved == len(siblings) - 1
        assert FAKE_HASH in node.relay.pending_block_requests

    def test_orphan_burst_does_not_refresh_retry_clock(self):
        """Regression: the duplicate parent fetches also refreshed the
        in-flight timestamp, so the stale-retry could never fire."""
        simulated = build_ring(getdata_retry_s=5.0)
        network = simulated.network
        simulator = simulated.simulator
        node = simulated.node(0)
        node.accept_block(self.orphan_sibling(0, FAKE_HASH), origin_peer=1)
        requested_at = node.relay.pending_block_requests[FAKE_HASH]
        simulator.run(until=3.0)
        node.accept_block(self.orphan_sibling(1, FAKE_HASH), origin_peer=1)
        assert node.relay.pending_block_requests[FAKE_HASH] == requested_at
        # The request goes stale and a later announcement retries it.
        simulator.run(until=10.0)
        network.send(
            3,
            0,
            InvMessage(sender=3, inventory_type=InventoryType.BLOCK, hashes=(FAKE_HASH,)),
        )
        simulator.run(until=20.0)
        assert node.stats.getdata_retries == 1


class TestMempoolCapacityDrops:
    def test_capacity_drop_is_not_permanent(self):
        """Regression: a tx rejected only because the pool was full stayed in
        known_transactions forever, so no later INV could re-offer it once
        the pool drained."""
        from repro.protocol.messages import TxMessage

        simulated = build_ring(mempool_max_size=1)
        network = simulated.network
        node = simulated.node(0)
        tx1 = simulated.node(1).create_transaction([("dest", 100)], broadcast=False)
        tx2 = simulated.node(3).create_transaction([("dest", 200)], broadcast=False)
        network.send(1, 0, TxMessage(sender=1, transaction=tx1))
        simulated.simulator.run(until=5.0)
        assert tx1.txid in node.mempool
        network.send(3, 0, TxMessage(sender=3, transaction=tx2))
        simulated.simulator.run(until=10.0)
        # Capacity drop: rejected, counted, and deliberately forgotten.
        assert tx2.txid not in node.mempool
        assert node.stats.mempool_capacity_drops == 1
        assert tx2.txid not in node.known_transactions
        # The pool drains (tx1 confirms in a block mined by node 1)...
        mine_at(simulated, 1)
        simulated.simulator.run(until=simulated.simulator.now + 60.0)
        assert tx1.txid not in node.mempool
        # ...and a late INV now triggers a fresh GETDATA and admission.
        before = node.stats.getdata_sent
        network.send(
            3,
            0,
            InvMessage(
                sender=3,
                inventory_type=InventoryType.TRANSACTION,
                hashes=(tx2.txid,),
            ),
        )
        simulated.simulator.run(until=simulated.simulator.now + 30.0)
        assert node.stats.getdata_sent == before + 1
        assert tx2.txid in node.mempool

    def test_conflict_rejection_still_remembered(self):
        """Only *capacity* drops are forgotten: a conflicting tx stays in the
        known-set (first-seen wins) and is never counted as a capacity drop."""
        simulated = build_ring(mempool_max_size=10)
        node = simulated.node(0)
        spendable = node.spendable_outputs()[:1]
        tx1 = Transaction.create_signed(node.keypair, spendable, [("dest", 100)])
        conflict = Transaction.create_signed(
            node.keypair, spendable, [("elsewhere", 100)]
        )
        node.accept_transaction(tx1, origin_peer=1)
        assert tx1.txid in node.mempool
        node.accept_transaction(conflict, origin_peer=3)
        assert conflict.txid in node.known_transactions
        assert node.stats.mempool_capacity_drops == 0
        assert conflict.txid in node.observed_conflicts


class TestGetdataDedup:
    def test_duplicate_block_inv_not_rerequested(self):
        simulated = build_ring()
        network = simulated.network
        node = simulated.node(0)
        before = network.messages_sent.get("getdata", 0)
        for announcer in (1, 3):
            network.send(
                announcer,
                0,
                InvMessage(
                    sender=announcer,
                    inventory_type=InventoryType.BLOCK,
                    hashes=(FAKE_HASH,),
                ),
            )
        simulated.simulator.run(until=10.0)
        assert network.messages_sent["getdata"] == before + 1
        assert node.stats.getdata_saved == 1
        assert node.stats.getdata_retries == 0

    def test_stale_request_retried_from_new_announcer(self):
        simulated = build_ring(getdata_retry_s=5.0)
        network = simulated.network
        simulator = simulated.simulator
        node = simulated.node(0)
        network.send(
            1,
            0,
            InvMessage(sender=1, inventory_type=InventoryType.BLOCK, hashes=(FAKE_HASH,)),
        )
        simulator.run(until=2.0)
        assert FAKE_HASH in node.relay.pending_block_requests
        before = network.messages_sent["getdata"]
        # The serving peer never answers (it does not have the block); after
        # the timeout a fresh announcement re-requests from the new peer.
        simulator.run(until=10.0)
        network.send(
            3,
            0,
            InvMessage(sender=3, inventory_type=InventoryType.BLOCK, hashes=(FAKE_HASH,)),
        )
        simulator.run(until=20.0)
        assert node.stats.getdata_retries == 1
        assert network.messages_sent["getdata"] == before + 1

    def test_duplicate_tx_inv_saved_across_peers(self):
        simulated = build_ring()
        network = simulated.network
        node = simulated.node(0)
        txid = "a" * 64
        for announcer in (1, 3):
            network.send(
                announcer,
                0,
                InvMessage(
                    sender=announcer,
                    inventory_type=InventoryType.TRANSACTION,
                    hashes=(txid,),
                ),
            )
        simulated.simulator.run(until=10.0)
        assert node.stats.getdata_sent == 1
        assert node.stats.getdata_saved == 1


class TestOrphanPoolCap:
    def orphan(self, index, height=5):
        coinbase = Transaction.coinbase("miner-address", 100, tag=f"orphan-{index}")
        return Block.create(
            previous=_FakeParent(f"{index:02x}" * 32, height - 1),
            transactions=(coinbase,),
            timestamp=1.0,
            nonce=index,
            miner_id=9,
        )

    def test_pool_evicts_oldest_beyond_cap(self):
        simulated = build_network(
            NetworkParameters(
                node_count=2, seed=1, node_config=NodeConfig(max_orphan_blocks=3)
            )
        )
        node = simulated.node(0)
        blocks = [self.orphan(i) for i in range(5)]
        for block in blocks:
            node.accept_block(block, origin_peer=None)
        assert node.orphan_block_count == 3
        assert node.stats.orphans_evicted == 2
        # The oldest stashed blocks went first (FIFO).
        remaining = {
            b.block_hash for waiting in node._orphan_blocks.values() for b in waiting
        }
        assert remaining == {b.block_hash for b in blocks[2:]}

    def test_evicted_orphan_can_be_reannounced(self):
        """Eviction must be a deferral, not a permanent ban: the hash leaves
        known_blocks so a later INV can re-request the block."""
        simulated = build_network(
            NetworkParameters(
                node_count=2, seed=1, node_config=NodeConfig(max_orphan_blocks=2)
            )
        )
        node = simulated.node(0)
        blocks = [self.orphan(i) for i in range(3)]
        for block in blocks:
            node.accept_block(block, origin_peer=None)
        assert node.stats.orphans_evicted == 1
        assert blocks[0].block_hash not in node.known_blocks
        assert blocks[1].block_hash in node.known_blocks

    def test_duplicate_orphan_not_double_counted(self):
        simulated = build_network(
            NetworkParameters(
                node_count=2, seed=1, node_config=NodeConfig(max_orphan_blocks=3)
            )
        )
        node = simulated.node(0)
        block = self.orphan(0)
        node.accept_block(block, origin_peer=None)
        node.accept_block(block, origin_peer=None)
        assert node.orphan_block_count == 1
        assert node.stats.orphans_evicted == 0


class _FakeParent:
    """Stand-in parent so Block.create can build an orphan (parent unknown)."""

    def __init__(self, block_hash, height):
        self.block_hash = block_hash
        self.height = height
