"""Tests for the pluggable relay strategies (flood / compact / push).

Covers the strategy registry, compact-block reconstruction (mempool hit,
GETBLOCKTXN round-trip, Merkle-mismatch fallback), unsolicited cluster push,
the cross-peer GETDATA dedup with timeout-based retry, and the bounded
orphan-block pool.
"""

import pytest

from repro.protocol.block import Block
from repro.protocol.messages import (
    BlockMessage,
    CmpctBlockMessage,
    InvMessage,
    InventoryType,
    short_txid,
)
from repro.protocol.mining import MiningProcess, equal_hash_power
from repro.protocol.node import NodeConfig
from repro.protocol.relay import (
    RELAY_NAMES,
    RELAY_STRATEGIES,
    CompactBlockRelay,
    FloodRelay,
    PushRelay,
    build_relay_strategy,
    validate_relay_name,
)
from repro.protocol.transaction import Transaction
from repro.workloads.generators import fund_nodes
from repro.workloads.network_gen import NetworkParameters, build_network

FAKE_HASH = "f" * 64


def build_ring(node_count=10, seed=2, relay="flood", **config_kwargs):
    """A small funded network wired as a ring with chords."""
    config = NodeConfig(relay_strategy=relay, **config_kwargs)
    params = NetworkParameters(node_count=node_count, seed=seed, node_config=config)
    simulated = build_network(params)
    network = simulated.network
    ids = simulated.node_ids()
    for index, node_id in enumerate(ids):
        network.connect(node_id, ids[(index + 1) % len(ids)])
        network.connect(node_id, ids[(index + 3) % len(ids)])
    fund_nodes(list(simulated.nodes.values()), outputs_per_node=3)
    return simulated


def mine_at(simulated, winner_id):
    """Mine one block at ``winner_id`` from its own mempool."""
    mining = MiningProcess(
        simulated.simulator,
        simulated.nodes,
        equal_hash_power(simulated.node_ids()),
        simulated.simulator.random.stream("mining"),
    )
    block = mining.mine_one_block(winner_id=winner_id)
    assert block is not None
    return block


class TestRegistry:
    def test_relay_names(self):
        assert RELAY_NAMES == ("flood", "compact", "push")
        assert set(RELAY_STRATEGIES) == set(RELAY_NAMES)

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown relay strategy"):
            validate_relay_name("gossip")

    def test_node_builds_configured_strategy(self):
        for name, cls in (("flood", FloodRelay), ("compact", CompactBlockRelay), ("push", PushRelay)):
            simulated = build_network(
                NetworkParameters(node_count=2, seed=1, node_config=NodeConfig(relay_strategy=name))
            )
            assert type(simulated.node(0).relay) is cls
            assert simulated.node(0).relay.node is simulated.node(0)

    def test_unknown_strategy_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown relay strategy"):
            build_network(
                NetworkParameters(
                    node_count=2, seed=1, node_config=NodeConfig(relay_strategy="bogus")
                )
            )

    def test_build_relay_strategy_binds_node(self):
        simulated = build_network(NetworkParameters(node_count=2, seed=1))
        strategy = build_relay_strategy("compact", simulated.node(1))
        assert isinstance(strategy, CompactBlockRelay)
        assert strategy.node is simulated.node(1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NodeConfig(getdata_retry_s=0.0)
        with pytest.raises(ValueError):
            NodeConfig(max_orphan_blocks=0)


class TestCompactRelay:
    def test_block_reconstructed_from_mempool_without_fetch(self):
        simulated = build_ring(relay="compact")
        tx = simulated.node(0).create_transaction([("dest", 500)])
        simulated.simulator.run(until=30.0)  # tx floods to every mempool
        mine_at(simulated, 0)
        simulated.simulator.run(until=90.0)
        network = simulated.network
        assert all(n.blockchain.height == 2 for n in simulated.nodes.values())
        assert all(n.blockchain.contains_transaction(tx.txid) for n in simulated.nodes.values())
        assert network.messages_sent["cmpctblock"] > 0
        assert network.messages_sent.get("block", 0) == 0
        assert network.messages_sent.get("getblocktxn", 0) == 0
        reconstructed = sum(n.stats.compact_blocks_reconstructed for n in simulated.nodes.values())
        assert reconstructed == simulated.node_count - 1

    def test_missing_transactions_fetched_with_getblocktxn(self):
        simulated = build_ring(relay="compact")
        # The transaction stays local to the miner: nobody else can
        # reconstruct the block without the GETBLOCKTXN round-trip.
        tx = simulated.node(0).create_transaction([("dest", 500)], broadcast=False)
        mine_at(simulated, 0)
        simulated.simulator.run(until=90.0)
        network = simulated.network
        assert all(n.blockchain.height == 2 for n in simulated.nodes.values())
        assert all(n.blockchain.contains_transaction(tx.txid) for n in simulated.nodes.values())
        assert network.messages_sent["getblocktxn"] > 0
        assert network.messages_sent["blocktxn"] > 0
        fetched = sum(n.stats.compact_txs_requested for n in simulated.nodes.values())
        assert fetched >= simulated.node_count - 1

    def test_coinbase_only_block_needs_no_fetch(self):
        simulated = build_ring(relay="compact")
        mine_at(simulated, 3)
        simulated.simulator.run(until=90.0)
        assert all(n.blockchain.height == 2 for n in simulated.nodes.values())
        assert simulated.network.messages_sent.get("getblocktxn", 0) == 0

    def test_merkle_mismatch_falls_back_to_full_block(self):
        simulated = build_ring(relay="compact")
        receiver = simulated.node(1)
        block = mine_at(simulated, 0)
        # Corrupt a reconstruction slot: a short-id collision picked the
        # wrong transaction, which only the Merkle check can catch.
        wrong = Transaction.coinbase(receiver.keypair.address, 7, tag="wrong")
        strategy = receiver.relay
        strategy._complete(
            block.block_hash,
            block.header,
            block.height,
            [block.transactions[0], wrong],
            origin=0,
        )
        assert receiver.stats.compact_fallbacks == 1
        assert block.block_hash in strategy.pending_block_requests
        simulated.simulator.run(until=60.0)
        # The fallback GETDATA fetched the real block from the miner.
        assert receiver.blockchain.has_block(block.block_hash)

    def test_flood_node_fetches_full_block_on_cmpctblock(self):
        """Graceful interop: a flood node treats CMPCTBLOCK as an announcement."""
        simulated = build_ring(relay="flood")
        block = mine_at(simulated, 0)
        message = CmpctBlockMessage(
            sender=0,
            header=block.header,
            height=block.height,
            short_ids=tuple(short_txid(tx.txid) for tx in block.transactions[1:]),
            coinbase=block.transactions[0],
        )
        network = simulated.network
        network.send(0, 1, message)
        simulated.simulator.run(until=30.0)
        assert simulated.node(1).blockchain.has_block(block.block_hash)

    def test_reconstruction_state_dropped_on_offline(self):
        simulated = build_ring(relay="compact")
        strategy = simulated.node(2).relay
        strategy._reconstructions["deadbeef"] = object()
        simulated.network.set_online(2, False)
        assert not strategy._reconstructions

    def test_stale_reconstruction_retried_from_new_announcer(self):
        """A GETBLOCKTXN round-trip that never completes (the serving peer
        churned away) must not suppress later announcements forever."""
        simulated = build_ring(relay="compact", getdata_retry_s=5.0)
        receiver = simulated.node(1)
        # The block's transaction is unknown to the receiver, forcing the
        # GETBLOCKTXN round-trip.
        simulated.node(0).create_transaction([("dest", 500)], broadcast=False)
        block = mine_at(simulated, 0)
        message = CmpctBlockMessage(
            sender=0,
            header=block.header,
            height=block.height,
            short_ids=tuple(short_txid(tx.txid) for tx in block.transactions[1:]),
            coinbase=block.transactions[0],
        )
        # First announcement arrives from a peer that will never answer the
        # fetch (node 9 does not have the block).
        receiver.relay.handle_cmpct_block(9, message)
        assert block.block_hash in receiver.relay._reconstructions
        # A fresh announcement within the timeout is suppressed...
        receiver.relay.handle_cmpct_block(0, message)
        assert receiver.stats.getdata_retries == 0
        # ...but once the round-trip is stale, the new announcer takes over.
        simulated.simulator.run(until=simulated.simulator.now + 10.0)
        receiver.relay.handle_cmpct_block(0, message)
        assert receiver.stats.getdata_retries == 1
        simulated.simulator.run(until=simulated.simulator.now + 30.0)
        assert receiver.blockchain.has_block(block.block_hash)


class TestPushRelay:
    def test_cluster_links_get_full_block_others_get_inv(self):
        config = NodeConfig(relay_strategy="push")
        params = NetworkParameters(node_count=6, seed=3, node_config=config)
        simulated = build_network(params)
        network = simulated.network
        # 0-1 is an intra-cluster link, 0-2 is not.
        network.connect(0, 1, is_cluster_link=True)
        network.connect(0, 2)
        network.connect(1, 2)
        fund_nodes(list(simulated.nodes.values()), outputs_per_node=2)
        block = mine_at(simulated, 0)
        simulated.simulator.run(until=60.0)
        assert simulated.node(0).stats.blocks_pushed >= 1
        assert network.messages_sent["block"] >= 1
        assert network.messages_sent["inv"] >= 1
        assert simulated.node(1).blockchain.has_block(block.block_hash)
        assert simulated.node(2).blockchain.has_block(block.block_hash)

    def test_without_cluster_links_degenerates_to_flood(self):
        pushed = build_ring(relay="push", seed=4)
        flooded = build_ring(relay="flood", seed=4)
        for simulated in (pushed, flooded):
            mine_at(simulated, 0)
            simulated.simulator.run(until=90.0)
        assert dict(pushed.network.messages_sent) == dict(flooded.network.messages_sent)
        assert all(n.stats.blocks_pushed == 0 for n in pushed.nodes.values())


class TestGetdataDedup:
    def test_duplicate_block_inv_not_rerequested(self):
        simulated = build_ring()
        network = simulated.network
        node = simulated.node(0)
        before = network.messages_sent.get("getdata", 0)
        for announcer in (1, 3):
            network.send(
                announcer,
                0,
                InvMessage(
                    sender=announcer,
                    inventory_type=InventoryType.BLOCK,
                    hashes=(FAKE_HASH,),
                ),
            )
        simulated.simulator.run(until=10.0)
        assert network.messages_sent["getdata"] == before + 1
        assert node.stats.getdata_saved == 1
        assert node.stats.getdata_retries == 0

    def test_stale_request_retried_from_new_announcer(self):
        simulated = build_ring(getdata_retry_s=5.0)
        network = simulated.network
        simulator = simulated.simulator
        node = simulated.node(0)
        network.send(
            1,
            0,
            InvMessage(sender=1, inventory_type=InventoryType.BLOCK, hashes=(FAKE_HASH,)),
        )
        simulator.run(until=2.0)
        assert FAKE_HASH in node.relay.pending_block_requests
        before = network.messages_sent["getdata"]
        # The serving peer never answers (it does not have the block); after
        # the timeout a fresh announcement re-requests from the new peer.
        simulator.run(until=10.0)
        network.send(
            3,
            0,
            InvMessage(sender=3, inventory_type=InventoryType.BLOCK, hashes=(FAKE_HASH,)),
        )
        simulator.run(until=20.0)
        assert node.stats.getdata_retries == 1
        assert network.messages_sent["getdata"] == before + 1

    def test_duplicate_tx_inv_saved_across_peers(self):
        simulated = build_ring()
        network = simulated.network
        node = simulated.node(0)
        txid = "a" * 64
        for announcer in (1, 3):
            network.send(
                announcer,
                0,
                InvMessage(
                    sender=announcer,
                    inventory_type=InventoryType.TRANSACTION,
                    hashes=(txid,),
                ),
            )
        simulated.simulator.run(until=10.0)
        assert node.stats.getdata_sent == 1
        assert node.stats.getdata_saved == 1


class TestOrphanPoolCap:
    def orphan(self, index, height=5):
        coinbase = Transaction.coinbase("miner-address", 100, tag=f"orphan-{index}")
        return Block.create(
            previous=_FakeParent(f"{index:02x}" * 32, height - 1),
            transactions=(coinbase,),
            timestamp=1.0,
            nonce=index,
            miner_id=9,
        )

    def test_pool_evicts_oldest_beyond_cap(self):
        simulated = build_network(
            NetworkParameters(
                node_count=2, seed=1, node_config=NodeConfig(max_orphan_blocks=3)
            )
        )
        node = simulated.node(0)
        blocks = [self.orphan(i) for i in range(5)]
        for block in blocks:
            node.accept_block(block, origin_peer=None)
        assert node.orphan_block_count == 3
        assert node.stats.orphans_evicted == 2
        # The oldest stashed blocks went first (FIFO).
        remaining = {
            b.block_hash for waiting in node._orphan_blocks.values() for b in waiting
        }
        assert remaining == {b.block_hash for b in blocks[2:]}

    def test_evicted_orphan_can_be_reannounced(self):
        """Eviction must be a deferral, not a permanent ban: the hash leaves
        known_blocks so a later INV can re-request the block."""
        simulated = build_network(
            NetworkParameters(
                node_count=2, seed=1, node_config=NodeConfig(max_orphan_blocks=2)
            )
        )
        node = simulated.node(0)
        blocks = [self.orphan(i) for i in range(3)]
        for block in blocks:
            node.accept_block(block, origin_peer=None)
        assert node.stats.orphans_evicted == 1
        assert blocks[0].block_hash not in node.known_blocks
        assert blocks[1].block_hash in node.known_blocks

    def test_duplicate_orphan_not_double_counted(self):
        simulated = build_network(
            NetworkParameters(
                node_count=2, seed=1, node_config=NodeConfig(max_orphan_blocks=3)
            )
        )
        node = simulated.node(0)
        block = self.orphan(0)
        node.accept_block(block, origin_peer=None)
        node.accept_block(block, origin_peer=None)
        assert node.orphan_block_count == 1
        assert node.stats.orphans_evicted == 0


class _FakeParent:
    """Stand-in parent so Block.create can build an orphan (parent unknown)."""

    def __init__(self, block_hash, height):
        self.block_hash = block_hash
        self.height = height
