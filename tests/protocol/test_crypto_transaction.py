"""Tests for the crypto stand-in and the transaction model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.crypto import (
    KeyPair,
    address_of_public_key,
    double_sha256_hex,
    sha256_hex,
    sign,
    verify_signature,
)
from repro.protocol.transaction import Transaction, TxInput, TxOutput


class TestCrypto:
    def test_sha256_is_deterministic(self):
        assert sha256_hex("hello") == sha256_hex("hello")

    def test_sha256_accepts_bytes_and_str(self):
        assert sha256_hex("abc") == sha256_hex(b"abc")

    def test_double_sha256_differs_from_single(self):
        assert double_sha256_hex("abc") != sha256_hex("abc")

    def test_keypair_generation_deterministic(self):
        assert KeyPair.generate("seed-1") == KeyPair.generate("seed-1")

    def test_different_seeds_give_different_keys(self):
        assert KeyPair.generate("seed-1") != KeyPair.generate("seed-2")

    def test_address_derives_from_public_key(self):
        keypair = KeyPair.generate("wallet")
        assert address_of_public_key(keypair.public_key) == keypair.address

    def test_valid_signature_verifies(self):
        keypair = KeyPair.generate("wallet")
        signature = sign(keypair.private_key, "message")
        assert verify_signature(keypair.public_key, keypair.private_key, "message", signature)

    def test_signature_fails_for_wrong_message(self):
        keypair = KeyPair.generate("wallet")
        signature = sign(keypair.private_key, "message")
        assert not verify_signature(keypair.public_key, keypair.private_key, "other", signature)

    def test_signature_fails_for_wrong_key(self):
        owner = KeyPair.generate("owner")
        thief = KeyPair.generate("thief")
        forged = sign(thief.private_key, "message")
        assert not verify_signature(owner.public_key, thief.private_key, "message", forged)

    @given(seed=st.text(min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_keypair_components_distinct_property(self, seed):
        keypair = KeyPair.generate(seed)
        assert keypair.private_key != keypair.public_key
        assert keypair.address != keypair.public_key


class TestTxOutputsInputs:
    def test_negative_output_rejected(self):
        with pytest.raises(ValueError):
            TxOutput(value=-1, address="a")

    def test_empty_address_rejected(self):
        with pytest.raises(ValueError):
            TxOutput(value=1, address="")

    def test_input_outpoint(self):
        tx_input = TxInput(prev_txid="abc", prev_index=2)
        assert tx_input.outpoint == ("abc", 2)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            TxInput(prev_txid="abc", prev_index=-1)

    def test_empty_prev_txid_rejected(self):
        with pytest.raises(ValueError):
            TxInput(prev_txid="", prev_index=0)


class TestTransaction:
    def _funded_keypair(self):
        keypair = KeyPair.generate("wallet")
        coinbase = Transaction.coinbase(keypair.address, 1_000)
        return keypair, coinbase

    def test_requires_outputs(self):
        with pytest.raises(ValueError):
            Transaction(inputs=(TxInput("a", 0),), outputs=())

    def test_non_coinbase_requires_inputs(self):
        with pytest.raises(ValueError):
            Transaction(inputs=(), outputs=(TxOutput(1, "a"),))

    def test_coinbase_needs_no_real_inputs(self):
        coinbase = Transaction.coinbase("addr", 500)
        assert coinbase.is_coinbase
        assert coinbase.total_output_value == 500

    def test_coinbase_tags_produce_distinct_ids(self):
        a = Transaction.coinbase("addr", 500, tag="1")
        b = Transaction.coinbase("addr", 500, tag="2")
        assert a.txid != b.txid

    def test_txid_stable_and_content_addressed(self):
        keypair, coinbase = self._funded_keypair()
        tx1 = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("dest", 400)])
        tx2 = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("dest", 400)])
        assert tx1.txid == tx2.txid

    def test_different_destination_changes_txid(self):
        keypair, coinbase = self._funded_keypair()
        tx1 = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("dest-a", 400)])
        tx2 = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("dest-b", 400)])
        assert tx1.txid != tx2.txid

    def test_change_output_returns_excess(self):
        keypair, coinbase = self._funded_keypair()
        tx = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("dest", 400)])
        assert tx.total_output_value == 1000
        change = [o for o in tx.outputs if o.address == keypair.address]
        assert change and change[0].value == 600

    def test_exact_spend_has_no_change(self):
        keypair, coinbase = self._funded_keypair()
        tx = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("dest", 1000)])
        assert len(tx.outputs) == 1

    def test_overspend_rejected(self):
        keypair, coinbase = self._funded_keypair()
        with pytest.raises(ValueError):
            Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("dest", 2000)])

    def test_empty_spendable_rejected(self):
        keypair = KeyPair.generate("wallet")
        with pytest.raises(ValueError):
            Transaction.create_signed(keypair, [], [("dest", 1)])

    def test_conflict_detection(self):
        keypair, coinbase = self._funded_keypair()
        tx1 = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("merchant", 900)])
        tx2 = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("attacker", 900)])
        assert tx1.conflicts_with(tx2)
        assert tx2.conflicts_with(tx1)

    def test_non_conflicting_transactions(self):
        keypair = KeyPair.generate("wallet")
        c1 = Transaction.coinbase(keypair.address, 1000, tag="1")
        c2 = Transaction.coinbase(keypair.address, 1000, tag="2")
        tx1 = Transaction.create_signed(keypair, [(c1.txid, 0, 1000)], [("x", 500)])
        tx2 = Transaction.create_signed(keypair, [(c2.txid, 0, 1000)], [("y", 500)])
        assert not tx1.conflicts_with(tx2)

    def test_spends_lookup(self):
        keypair, coinbase = self._funded_keypair()
        tx = Transaction.create_signed(keypair, [(coinbase.txid, 0, 1000)], [("dest", 100)])
        assert tx.spends((coinbase.txid, 0))
        assert not tx.spends((coinbase.txid, 1))

    def test_size_scales_with_inputs_and_outputs(self):
        keypair = KeyPair.generate("wallet")
        c1 = Transaction.coinbase(keypair.address, 1000, tag="1")
        c2 = Transaction.coinbase(keypair.address, 1000, tag="2")
        small = Transaction.create_signed(keypair, [(c1.txid, 0, 1000)], [("x", 1000)])
        large = Transaction.create_signed(
            keypair, [(c1.txid, 0, 1000), (c2.txid, 0, 1000)], [("x", 500), ("y", 700)]
        )
        assert large.size_bytes > small.size_bytes

    @given(value=st.integers(min_value=1, max_value=10**12))
    @settings(max_examples=50, deadline=None)
    def test_value_conservation_property(self, value):
        """Outputs (payment + change) always sum to the spent inputs."""
        keypair = KeyPair.generate("wallet")
        coinbase = Transaction.coinbase(keypair.address, value)
        pay = value // 2 if value > 1 else 1
        tx = Transaction.create_signed(keypair, [(coinbase.txid, 0, value)], [("dest", pay)])
        assert tx.total_output_value == value
