"""Tests for blocks, merkle roots and the fork-capable blockchain."""

import pytest

from repro.protocol.block import Block, BlockHeader, merkle_root
from repro.protocol.blockchain import Blockchain
from repro.protocol.crypto import KeyPair
from repro.protocol.transaction import Transaction


def make_block(previous, txs=None, miner=0, timestamp=1.0, nonce=0):
    if txs is None:
        filler = KeyPair.generate("filler")
        txs = [Transaction.coinbase(filler.address, 1, tag=f"fill-{previous.height}-{nonce}")]
    return Block.create(previous, list(txs), timestamp=timestamp, nonce=nonce, miner_id=miner)


class TestBlock:
    def test_genesis_properties(self):
        genesis = Block.genesis()
        assert genesis.is_genesis
        assert genesis.height == 0
        assert genesis.previous_hash == ""

    def test_genesis_is_shared(self):
        assert Block.genesis().block_hash == Block.genesis().block_hash

    def test_create_links_to_parent(self):
        genesis = Block.genesis()
        block = make_block(genesis)
        assert block.previous_hash == genesis.block_hash
        assert block.height == 1

    def test_block_hash_depends_on_nonce(self):
        genesis = Block.genesis()
        a = make_block(genesis, nonce=1)
        b = make_block(genesis, nonce=2)
        assert a.block_hash != b.block_hash

    def test_contains_and_txids(self):
        keypair = KeyPair.generate("w")
        coinbase = Transaction.coinbase(keypair.address, 100)
        block = make_block(Block.genesis(), [coinbase])
        assert block.contains(coinbase.txid)
        assert coinbase.txid in block.txids
        assert not block.contains("missing")

    def test_size_includes_transactions(self):
        keypair = KeyPair.generate("w")
        coinbase = Transaction.coinbase(keypair.address, 100)
        empty_ish = make_block(Block.genesis(), [coinbase])
        assert empty_ish.size_bytes > 80

    def test_non_genesis_requires_transactions(self):
        with pytest.raises(ValueError):
            Block(
                header=BlockHeader("parent", merkle_root(()), 0.0, 0),
                transactions=(),
                height=1,
            )

    def test_negative_height_rejected(self):
        with pytest.raises(ValueError):
            Block(header=BlockHeader("", merkle_root(()), 0.0, 0), transactions=(), height=-1)

    def test_header_meets_target(self):
        header = BlockHeader("", merkle_root(()), 0.0, 0)
        assert header.meets_target(2**256)
        assert not header.meets_target(0)


class TestMerkleRoot:
    def test_empty_root_is_stable(self):
        assert merkle_root(()) == merkle_root(())

    def test_root_changes_with_content(self):
        keypair = KeyPair.generate("w")
        a = Transaction.coinbase(keypair.address, 100, tag="a")
        b = Transaction.coinbase(keypair.address, 100, tag="b")
        assert merkle_root([a]) != merkle_root([b])

    def test_root_changes_with_order(self):
        keypair = KeyPair.generate("w")
        a = Transaction.coinbase(keypair.address, 100, tag="a")
        b = Transaction.coinbase(keypair.address, 100, tag="b")
        assert merkle_root([a, b]) != merkle_root([b, a])

    def test_odd_count_handled(self):
        keypair = KeyPair.generate("w")
        txs = [Transaction.coinbase(keypair.address, 100, tag=str(i)) for i in range(3)]
        assert merkle_root(txs)


class TestBlockchain:
    def _funded_chain(self):
        chain = Blockchain()
        keypair = KeyPair.generate("miner")
        coinbase = Transaction.coinbase(keypair.address, 1000, tag="funding")
        block1 = make_block(chain.genesis, [coinbase], miner=1)
        chain.add_block(block1)
        return chain, keypair, coinbase, block1

    def test_new_chain_at_genesis(self):
        chain = Blockchain()
        assert chain.height == 0
        assert chain.tip.is_genesis
        assert chain.block_count == 1

    def test_add_block_extends_tip(self):
        chain, _, _, block1 = self._funded_chain()
        assert chain.height == 1
        assert chain.tip.block_hash == block1.block_hash

    def test_duplicate_add_is_noop(self):
        chain, _, _, block1 = self._funded_chain()
        assert chain.add_block(block1) is False
        assert chain.block_count == 2

    def test_unknown_parent_rejected(self):
        chain = Blockchain()
        keypair = KeyPair.generate("w")
        orphan_parent = make_block(Block.genesis(), [Transaction.coinbase(keypair.address, 1, tag="x")])
        orphan = make_block(orphan_parent, [Transaction.coinbase(keypair.address, 1, tag="y")])
        with pytest.raises(ValueError):
            chain.add_block(orphan)

    def test_fork_recorded_but_tip_keeps_first_seen(self):
        chain, keypair, _, block1 = self._funded_chain()
        sibling = make_block(chain.genesis, [Transaction.coinbase(keypair.address, 1, tag="sib")], nonce=9)
        changed = chain.add_block(sibling, observed_at=5.0)
        assert changed is False
        assert chain.tip.block_hash == block1.block_hash
        assert chain.branch_count() == 2
        assert len(chain.fork_events) == 1
        assert chain.fork_events[0].height == 1

    def test_longer_branch_wins_reorg(self):
        chain, keypair, _, block1 = self._funded_chain()
        sibling = make_block(chain.genesis, [Transaction.coinbase(keypair.address, 1, tag="sib")], nonce=9)
        chain.add_block(sibling)
        extension = make_block(sibling, [Transaction.coinbase(keypair.address, 1, tag="ext")], nonce=10)
        changed = chain.add_block(extension)
        assert changed is True
        assert chain.tip.block_hash == extension.block_hash
        assert chain.height == 2

    def test_best_chain_lists_genesis_first(self):
        chain, _, _, block1 = self._funded_chain()
        best = chain.best_chain()
        assert best[0].is_genesis
        assert best[-1].block_hash == block1.block_hash

    def test_confirmations_count(self):
        chain, keypair, coinbase, block1 = self._funded_chain()
        assert chain.confirmations(coinbase.txid) == 1
        block2 = make_block(block1, [Transaction.coinbase(keypair.address, 1, tag="b2")])
        chain.add_block(block2)
        assert chain.confirmations(coinbase.txid) == 2
        assert chain.confirmations("missing") == 0

    def test_contains_transaction_follows_best_chain(self):
        chain, keypair, coinbase, _ = self._funded_chain()
        assert chain.contains_transaction(coinbase.txid)
        assert not chain.contains_transaction("missing")

    def test_utxo_set_reflects_best_chain(self):
        chain, keypair, coinbase, _ = self._funded_chain()
        utxo = chain.utxo_set()
        assert utxo.balance(keypair.address) == 1000

    def test_transaction_absent_from_losing_branch(self):
        chain, keypair, _, block1 = self._funded_chain()
        fork_tx = Transaction.coinbase(keypair.address, 77, tag="fork-only")
        sibling = make_block(chain.genesis, [fork_tx], nonce=9)
        chain.add_block(sibling)
        assert not chain.contains_transaction(fork_tx.txid)

    def test_chain_to_arbitrary_block(self):
        chain, keypair, _, block1 = self._funded_chain()
        block2 = make_block(block1, [Transaction.coinbase(keypair.address, 1, tag="b2")])
        chain.add_block(block2)
        path = chain.chain_to(block1.block_hash)
        assert [b.height for b in path] == [0, 1]

    def test_inconsistent_height_rejected(self):
        chain = Blockchain()
        keypair = KeyPair.generate("w")
        bad = Block(
            header=BlockHeader(chain.genesis.block_hash, merkle_root(()), 0.0, 0),
            transactions=(Transaction.coinbase(keypair.address, 1, tag="z"),),
            height=5,
        )
        with pytest.raises(ValueError):
            chain.add_block(bad)
