#!/usr/bin/env python3
"""Quickstart: build a BCBPT-clustered Bitcoin network and measure propagation.

This is the smallest end-to-end use of the library:

1. build a simulated Bitcoin network (geography, latency, nodes, DNS seed);
2. let the BCBPT policy cluster it by ping latency (d_t = 25 ms);
3. fund the wallets and run the paper's measuring-node methodology;
4. print the Δt_{m,n} summary.

Run with::

    python examples/quickstart.py [--nodes 150] [--runs 10]
"""

from __future__ import annotations

import argparse

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import PropagationExperiment
from repro.workloads.network_gen import NetworkParameters
from repro.workloads.scenarios import build_scenario


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=150, help="network size")
    parser.add_argument("--runs", type=int, default=10, help="measurement repetitions")
    parser.add_argument("--threshold-ms", type=float, default=25.0, help="BCBPT d_t in ms")
    parser.add_argument("--seed", type=int, default=7, help="master random seed")
    args = parser.parse_args()

    print(f"Building a {args.nodes}-node network (seed {args.seed}) ...")
    scenario = build_scenario(
        "bcbpt",
        NetworkParameters(node_count=args.nodes, seed=args.seed),
        latency_threshold_s=args.threshold_ms / 1000.0,
    )
    report = scenario.build_report
    print(
        f"BCBPT formed {report.cluster_summary['cluster_count']:.0f} clusters "
        f"(mean size {report.cluster_summary['mean_size']:.1f}) using "
        f"{report.ping_exchanges} ping exchanges; average degree "
        f"{report.average_degree:.1f}."
    )

    config = ExperimentConfig(
        node_count=args.nodes, runs=args.runs, seeds=(args.seed,), measuring_nodes=2
    )
    print(f"Measuring transaction propagation over {args.runs} runs per measuring node ...")
    result = PropagationExperiment(scenario, config).run()
    summary = result.summary()
    print()
    print("Δt distribution over the measuring nodes' proximity connections:")
    print(f"  samples : {int(summary['count'])}")
    print(f"  mean    : {summary['mean_s'] * 1000:.1f} ms")
    print(f"  median  : {summary['median_s'] * 1000:.1f} ms")
    print(f"  std     : {summary['std_s'] * 1000:.1f} ms")
    print(f"  p90     : {summary['p90_s'] * 1000:.1f} ms")
    print(f"  max     : {summary['max_s'] * 1000:.1f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
