#!/usr/bin/env python3
"""Threshold tuning: find a good BCBPT latency threshold for a given network.

The paper's Fig. 4 shows that smaller latency thresholds give lower delay
variance, but very small thresholds fragment the overlay into many tiny
clusters that lean on long-distance links.  This example runs the registered
``threshold_sweep`` experiment over a range of thresholds (including the
paper's 25/30/50/100 ms values), prints the delay-vs-cluster-structure table,
and recommends the threshold with the lowest p90 delay.

Run with::

    python examples/threshold_tuning.py --nodes 150 --thresholds-ms 15 25 50 100 200

(The same experiment is available directly as ``repro run threshold_sweep``,
including ``--sweep`` support for grid runs over any config field.)
"""

from __future__ import annotations

import argparse

from repro.experiments.api import run_experiment
from repro.experiments.config import ExperimentConfig


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=150)
    parser.add_argument("--runs", type=int, default=6)
    parser.add_argument("--seeds", type=int, nargs="+", default=[3, 11])
    parser.add_argument(
        "--thresholds-ms", type=float, nargs="+", default=[15, 25, 50, 100, 200]
    )
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()

    config = ExperimentConfig(
        node_count=args.nodes,
        runs=args.runs,
        seeds=tuple(args.seeds),
        measuring_nodes=2,
        workers=args.workers,
    )
    print(f"Sweeping BCBPT thresholds {sorted(args.thresholds_ms)} ms on {args.nodes} nodes ...")
    result = run_experiment(
        "threshold_sweep",
        config,
        {"thresholds_ms": tuple(sorted(args.thresholds_ms))},
    )
    print()
    print(result.render())

    points = result.payload
    best = min(points, key=lambda point: point.p90_delay_s)
    print()
    print(
        f"Recommended threshold: {best.threshold_s * 1000:.0f} ms "
        f"(p90 Δt = {best.p90_delay_s * 1000:.1f} ms, "
        f"{best.cluster_count:.0f} clusters of mean size {best.mean_cluster_size:.1f})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
