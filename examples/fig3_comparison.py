#!/usr/bin/env python3
"""Protocol comparison: regenerate the paper's Fig. 3 at a chosen scale.

Runs the measuring-node campaign under the vanilla Bitcoin protocol, the LBC
geographic clustering protocol and BCBPT (d_t = 25 ms) on identically seeded
networks, then prints the delay summaries, the per-rank variance curve and
whether the paper's ordering (BCBPT < LBC < Bitcoin) holds.

Run with::

    python examples/fig3_comparison.py --nodes 200 --runs 10 --seeds 3 11
"""

from __future__ import annotations

import argparse

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig3 import build_report, expected_ordering_holds, run_fig3


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=200)
    parser.add_argument("--runs", type=int, default=10)
    parser.add_argument("--seeds", type=int, nargs="+", default=[3, 11])
    parser.add_argument("--measuring-nodes", type=int, default=3)
    args = parser.parse_args()

    config = ExperimentConfig(
        node_count=args.nodes,
        runs=args.runs,
        seeds=tuple(args.seeds),
        measuring_nodes=args.measuring_nodes,
    )
    print(
        f"Comparing bitcoin / lbc / bcbpt on {args.nodes}-node networks, "
        f"{len(args.seeds)} seed(s), {args.runs} runs per measuring node ..."
    )
    results = run_fig3(config)
    print()
    print(build_report(results).render())
    print()
    if expected_ordering_holds(results):
        print("Paper ordering (BCBPT < LBC < Bitcoin in mean and variance): HOLDS")
        return 0
    print("Paper ordering (BCBPT < LBC < Bitcoin in mean and variance): DOES NOT HOLD")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
