#!/usr/bin/env python3
"""Protocol comparison: regenerate the paper's Fig. 3 at a chosen scale.

Runs the measuring-node campaign under the vanilla Bitcoin protocol, the LBC
geographic clustering protocol and BCBPT (d_t = 25 ms) on identically seeded
networks — through the unified experiment API — then prints the delay
summaries, the per-rank variance curve and whether the paper's ordering
(BCBPT < LBC < Bitcoin) holds, and persists the run to the result store so it
can be diffed against later runs::

    python examples/fig3_comparison.py --nodes 200 --runs 10 --seeds 3 11
    python -m repro.experiments compare fig3     # after two runs

(The same experiment is available directly as ``repro run fig3``.)
"""

from __future__ import annotations

import argparse

from repro.experiments.api import run_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ResultStore


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=200)
    parser.add_argument("--runs", type=int, default=10)
    parser.add_argument("--seeds", type=int, nargs="+", default=[3, 11])
    parser.add_argument("--measuring-nodes", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--no-save", action="store_true")
    args = parser.parse_args()

    config = ExperimentConfig(
        node_count=args.nodes,
        runs=args.runs,
        seeds=tuple(args.seeds),
        measuring_nodes=args.measuring_nodes,
        workers=args.workers,
    )
    print(
        f"Comparing bitcoin / lbc / bcbpt on {args.nodes}-node networks, "
        f"{len(args.seeds)} seed(s), {args.runs} runs per measuring node ..."
    )
    result = run_experiment("fig3", config)
    print()
    print(result.render())
    if not args.no_save:
        run_dir = ResultStore().save(result)
        print()
        print(f"saved: {run_dir}")
    if result.verdicts["paper_ordering"]:
        print("Paper ordering (BCBPT < LBC < Bitcoin in mean and variance): HOLDS")
        return 0
    print("Paper ordering (BCBPT < LBC < Bitcoin in mean and variance): DOES NOT HOLD")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
