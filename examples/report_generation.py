#!/usr/bin/env python3
"""End-to-end report generation: tiny Fig. 3 run -> stored envelope -> markdown.

The analysis pipeline in three steps, small enough for CI:

1. run the Fig. 3 comparison at toy scale through the unified experiment API
   (the driver's ``collect_samples`` hook stores the raw per-seed Δt series
   in the envelope's ``samples`` field);
2. persist the envelope to a result store;
3. regenerate the report from the *stored* run — percentile tables, bootstrap
   confidence intervals and the Fig. 3 delay-vs-coverage curves — with no
   re-simulation.  With matplotlib installed (``pip install -e .[plots]``)
   the figures are PNG/SVG; without it they render as markdown tables.

Run with::

    python examples/report_generation.py [--nodes 40] [--results-dir results]
"""

from __future__ import annotations

import argparse

from repro.analysis.figures import matplotlib_available
from repro.analysis.report import write_report
from repro.experiments.api import run_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ResultStore


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=40, help="network size")
    parser.add_argument("--runs", type=int, default=2, help="repetitions per measuring node")
    parser.add_argument("--seeds", type=int, nargs="+", default=[3, 11], help="master seeds")
    parser.add_argument(
        "--results-dir", default="results", help="result store root (default: results/)"
    )
    args = parser.parse_args()

    config = ExperimentConfig(
        node_count=args.nodes,
        runs=args.runs,
        seeds=tuple(args.seeds),
        measuring_nodes=1,
    )
    print(f"1. running fig3 at toy scale ({args.nodes} nodes, seeds {args.seeds}) ...")
    result = run_experiment("fig3", config)
    sample_series = len(result.samples.get("series", []))
    print(f"   envelope carries {sample_series} raw sample series")

    store = ResultStore(args.results_dir)
    run_dir = store.save(result)
    print(f"2. stored: {run_dir}")

    print("3. regenerating the report from the stored run (no re-simulation) ...")
    artifacts = write_report(store, str(run_dir))
    print(f"   report:  {artifacts.markdown_path}")
    if artifacts.figure_paths:
        for path in artifacts.figure_paths:
            print(f"   figure:  {path}")
    elif not matplotlib_available():
        print("   figures: matplotlib not installed -> markdown table fallback")

    lines = artifacts.markdown.splitlines()
    try:
        start = next(i for i, line in enumerate(lines) if line.startswith("## Percentiles"))
    except StopIteration:
        return 0
    end = next(
        (i for i in range(start + 1, len(lines)) if lines[i].startswith("## ")), len(lines)
    )
    print()
    print("--- report excerpt -------------------------------------------")
    print("\n".join(lines[start:end]).rstrip())
    print("--------------------------------------------------------------")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
