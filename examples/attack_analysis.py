#!/usr/bin/env python3
"""Security analysis: eclipse / partition exposure and double-spend races.

The paper's security discussion (Section V.C) worries that proximity-based
clustering makes eclipse and partition attacks easier, and its motivation
(Section I) argues that faster propagation reduces double-spend risk.  This
example quantifies both sides of that trade-off for the three protocols,
running the registered ``attacks`` and ``doublespend`` experiments through
the unified API.

Run with::

    python examples/attack_analysis.py --nodes 120 --adversary-fraction 0.15
"""

from __future__ import annotations

import argparse

from repro.experiments.api import run_experiment
from repro.experiments.config import ExperimentConfig


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=120)
    parser.add_argument("--seeds", type=int, nargs="+", default=[3, 11])
    parser.add_argument("--adversary-fraction", type=float, default=0.15)
    parser.add_argument("--races", type=int, default=4)
    args = parser.parse_args()

    config = ExperimentConfig(
        node_count=args.nodes, runs=3, seeds=tuple(args.seeds), measuring_nodes=2
    )

    print("Evaluating eclipse and partition exposure ...")
    attacks = run_experiment(
        "attacks", config, {"adversary_fraction": args.adversary_fraction}
    )
    print()
    print(attacks.render())

    print()
    print("Staging double-spend races ...")
    doublespend = run_experiment(
        "doublespend", config, {"races_per_seed": args.races, "race_horizon_s": 2.0}
    )
    print()
    print(doublespend.render())

    by_name = {r.protocol: r for r in attacks.payload.eclipse}
    print()
    print("Trade-off summary:")
    print(
        f"  eclipse exposure  : bitcoin {by_name['bitcoin'].eclipsed_fraction:.2f} "
        f"vs bcbpt {by_name['bcbpt'].eclipsed_fraction:.2f} "
        "(clustering concentrates the victim's neighbourhood)"
    )
    race_by_name = {p.protocol: p for p in doublespend.payload}
    print(
        f"  attacker first-seen share: bitcoin {race_by_name['bitcoin'].mean_attacker_share:.2f} "
        f"vs bcbpt {race_by_name['bcbpt'].mean_attacker_share:.2f} "
        "(faster relay does not favour the attacker)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
